package nasdt

import (
	"testing"

	"viva/internal/platform"
	"viva/internal/sim"
	"viva/internal/trace"
)

func TestClassWidths(t *testing.T) {
	cases := map[Class]int{'S': 4, 'W': 8, 'A': 16, 'B': 32}
	for c, w := range cases {
		got, err := c.Width()
		if err != nil || got != w {
			t.Errorf("Width(%q) = %d, %v; want %d", string(c), got, err, w)
		}
	}
	if _, err := Class('X').Width(); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestBuildConvergent(t *testing.T) {
	g := MustBuild(BH, 'A')
	// 16 + 8 + 4 + 2 + 1 = 31 nodes.
	if g.NumNodes() != 31 {
		t.Fatalf("BH A nodes = %d, want 31", g.NumNodes())
	}
	if len(g.Layers) != 5 {
		t.Fatalf("BH A layers = %d, want 5", len(g.Layers))
	}
	var sources, forwarders, sinks int
	for _, n := range g.Nodes {
		switch n.Role {
		case Source:
			sources++
			if len(n.In) != 0 || len(n.Out) != 1 {
				t.Errorf("BH source %d degree in=%d out=%d", n.ID, len(n.In), len(n.Out))
			}
		case Forwarder:
			forwarders++
			if len(n.In) != 2 || len(n.Out) != 1 {
				t.Errorf("BH forwarder %d degree in=%d out=%d", n.ID, len(n.In), len(n.Out))
			}
		case Sink:
			sinks++
			if len(n.In) != 2 || len(n.Out) != 0 {
				t.Errorf("BH sink %d degree in=%d out=%d", n.ID, len(n.In), len(n.Out))
			}
		}
	}
	if sources != 16 || forwarders != 14 || sinks != 1 {
		t.Errorf("BH roles = %d/%d/%d, want 16/14/1", sources, forwarders, sinks)
	}
}

func TestBuildDivergent(t *testing.T) {
	g := MustBuild(WH, 'A')
	if g.NumNodes() != 31 {
		t.Fatalf("WH A nodes = %d, want 31", g.NumNodes())
	}
	if g.Nodes[0].Role != Source || len(g.Nodes[0].Out) != 2 {
		t.Error("WH node 0 is not a fan-out source")
	}
	sinks := 0
	for _, n := range g.Nodes {
		if n.Role == Sink {
			sinks++
			if len(n.In) != 1 || len(n.Out) != 0 {
				t.Errorf("WH sink %d degree in=%d out=%d", n.ID, len(n.In), len(n.Out))
			}
		}
	}
	if sinks != 16 {
		t.Errorf("WH sinks = %d, want 16", sinks)
	}
}

func TestBuildShuffle(t *testing.T) {
	g := MustBuild(SH, 'S')
	if g.NumNodes() != 12 {
		t.Fatalf("SH S nodes = %d, want 12", g.NumNodes())
	}
	for _, n := range g.Nodes {
		switch n.Role {
		case Source:
			if len(n.Out) != 2 {
				t.Errorf("SH source out-degree = %d", len(n.Out))
			}
		case Forwarder:
			if len(n.In) != 2 || len(n.Out) != 2 {
				t.Errorf("SH forwarder degrees = %d/%d", len(n.In), len(n.Out))
			}
		case Sink:
			if len(n.In) != 2 {
				t.Errorf("SH sink in-degree = %d", len(n.In))
			}
		}
	}
}

func TestBuildEdgesConsistent(t *testing.T) {
	for _, kind := range []Kind{BH, WH, SH} {
		for _, class := range []Class{'S', 'W', 'A', 'B'} {
			g := MustBuild(kind, class)
			for _, n := range g.Nodes {
				for _, dst := range n.Out {
					found := false
					for _, in := range g.Nodes[dst].In {
						if in == n.ID {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s/%s: edge %d->%d not mirrored", kind, string(class), n.ID, dst)
					}
				}
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(BH, 'Z'); err == nil {
		t.Error("bad class accepted")
	}
	if _, err := Build(Kind(99), 'A'); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestSequentialHostfile(t *testing.T) {
	hosts := []string{"a", "b", "c"}
	hf := SequentialHostfile(hosts, 7)
	want := []string{"a", "b", "c", "a", "b", "c", "a"}
	for i := range want {
		if hf[i] != want[i] {
			t.Fatalf("hostfile = %v, want %v", hf, want)
		}
	}
}

func TestLocalityHostfileSingleCrossEdge(t *testing.T) {
	p := platform.TwoClusters()
	adonis := p.HostsOfCluster("adonis")
	griffon := p.HostsOfCluster("griffon")
	for _, kind := range []Kind{BH, WH} {
		g := MustBuild(kind, 'A')
		hf := LocalityHostfile(g, adonis, griffon)
		if got := CrossEdges(g, hf, p); got != 1 {
			t.Errorf("%s locality cross edges = %d, want 1", kind, got)
		}
	}
}

func TestSequentialHostfileManyCrossEdges(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'A')
	hf := SequentialHostfile(ClusterHosts(p, "adonis", "griffon"), g.NumNodes())
	seq := CrossEdges(g, hf, p)
	loc := CrossEdges(g, LocalityHostfile(g, p.HostsOfCluster("adonis"), p.HostsOfCluster("griffon")), p)
	if seq <= loc {
		t.Errorf("sequential cross edges (%d) not worse than locality (%d)", seq, loc)
	}
}

func runDT(t *testing.T, hostfile []string, g *Graph, tr *trace.Trace) float64 {
	t.Helper()
	p := platform.TwoClusters()
	e := sim.New(p, tr)
	cfg := DefaultConfig()
	cfg.Waves = 5
	cfg.MessageBytes = 1e6
	Run(e, g, hostfile, cfg)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

func TestRunCompletes(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'S')
	hf := SequentialHostfile(ClusterHosts(p, "adonis", "griffon"), g.NumNodes())
	makespan := runDT(t, hf, g, nil)
	if makespan <= 0 {
		t.Fatalf("makespan = %g", makespan)
	}
}

func TestLocalityBeatsSequential(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'A')
	seqHF := SequentialHostfile(ClusterHosts(p, "adonis", "griffon"), g.NumNodes())
	locHF := LocalityHostfile(g, p.HostsOfCluster("adonis"), p.HostsOfCluster("griffon"))
	seq := runDT(t, seqHF, g, nil)
	loc := runDT(t, locHF, g, nil)
	if loc >= seq {
		t.Errorf("locality makespan %g not better than sequential %g", loc, seq)
	}
}

func TestInterClusterTrafficDropsWithLocality(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'A')

	trSeq := trace.New()
	seq := runDT(t, SequentialHostfile(ClusterHosts(p, "adonis", "griffon"), g.NumNodes()), g, trSeq)
	trLoc := trace.New()
	loc := runDT(t, LocalityHostfile(g, p.HostsOfCluster("adonis"), p.HostsOfCluster("griffon")), g, trLoc)

	bytesOn := func(tr *trace.Trace, link string, end float64) float64 {
		return tr.Timeline(link, trace.MetricTraffic).Integrate(0, end)
	}
	seqBytes := bytesOn(trSeq, "up:adonis", seq)
	locBytes := bytesOn(trLoc, "up:adonis", loc)
	if locBytes >= seqBytes/2 {
		t.Errorf("inter-cluster bytes: locality %g not well below sequential %g", locBytes, seqBytes)
	}
}

func TestRunPanicsOnBadInput(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'S')
	e := sim.New(p, nil)
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	assertPanics("short hostfile", func() { Run(e, g, []string{"adonis-1"}, DefaultConfig()) })
	assertPanics("zero waves", func() {
		hf := SequentialHostfile(ClusterHosts(p, "adonis"), g.NumNodes())
		Run(e, g, hf, Config{Waves: 0, MessageBytes: 1})
	})
}
