package nasdt

import (
	"bytes"
	"fmt"
	"testing"

	"viva/internal/fault"
	"viva/internal/platform"
	"viva/internal/sim"
	"viva/internal/trace"
)

func TestClassWidths(t *testing.T) {
	cases := map[Class]int{'S': 4, 'W': 8, 'A': 16, 'B': 32}
	for c, w := range cases {
		got, err := c.Width()
		if err != nil || got != w {
			t.Errorf("Width(%q) = %d, %v; want %d", string(c), got, err, w)
		}
	}
	if _, err := Class('X').Width(); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestBuildConvergent(t *testing.T) {
	g := MustBuild(BH, 'A')
	// 16 + 8 + 4 + 2 + 1 = 31 nodes.
	if g.NumNodes() != 31 {
		t.Fatalf("BH A nodes = %d, want 31", g.NumNodes())
	}
	if len(g.Layers) != 5 {
		t.Fatalf("BH A layers = %d, want 5", len(g.Layers))
	}
	var sources, forwarders, sinks int
	for _, n := range g.Nodes {
		switch n.Role {
		case Source:
			sources++
			if len(n.In) != 0 || len(n.Out) != 1 {
				t.Errorf("BH source %d degree in=%d out=%d", n.ID, len(n.In), len(n.Out))
			}
		case Forwarder:
			forwarders++
			if len(n.In) != 2 || len(n.Out) != 1 {
				t.Errorf("BH forwarder %d degree in=%d out=%d", n.ID, len(n.In), len(n.Out))
			}
		case Sink:
			sinks++
			if len(n.In) != 2 || len(n.Out) != 0 {
				t.Errorf("BH sink %d degree in=%d out=%d", n.ID, len(n.In), len(n.Out))
			}
		}
	}
	if sources != 16 || forwarders != 14 || sinks != 1 {
		t.Errorf("BH roles = %d/%d/%d, want 16/14/1", sources, forwarders, sinks)
	}
}

func TestBuildDivergent(t *testing.T) {
	g := MustBuild(WH, 'A')
	if g.NumNodes() != 31 {
		t.Fatalf("WH A nodes = %d, want 31", g.NumNodes())
	}
	if g.Nodes[0].Role != Source || len(g.Nodes[0].Out) != 2 {
		t.Error("WH node 0 is not a fan-out source")
	}
	sinks := 0
	for _, n := range g.Nodes {
		if n.Role == Sink {
			sinks++
			if len(n.In) != 1 || len(n.Out) != 0 {
				t.Errorf("WH sink %d degree in=%d out=%d", n.ID, len(n.In), len(n.Out))
			}
		}
	}
	if sinks != 16 {
		t.Errorf("WH sinks = %d, want 16", sinks)
	}
}

func TestBuildShuffle(t *testing.T) {
	g := MustBuild(SH, 'S')
	if g.NumNodes() != 12 {
		t.Fatalf("SH S nodes = %d, want 12", g.NumNodes())
	}
	for _, n := range g.Nodes {
		switch n.Role {
		case Source:
			if len(n.Out) != 2 {
				t.Errorf("SH source out-degree = %d", len(n.Out))
			}
		case Forwarder:
			if len(n.In) != 2 || len(n.Out) != 2 {
				t.Errorf("SH forwarder degrees = %d/%d", len(n.In), len(n.Out))
			}
		case Sink:
			if len(n.In) != 2 {
				t.Errorf("SH sink in-degree = %d", len(n.In))
			}
		}
	}
}

func TestBuildEdgesConsistent(t *testing.T) {
	for _, kind := range []Kind{BH, WH, SH} {
		for _, class := range []Class{'S', 'W', 'A', 'B'} {
			g := MustBuild(kind, class)
			for _, n := range g.Nodes {
				for _, dst := range n.Out {
					found := false
					for _, in := range g.Nodes[dst].In {
						if in == n.ID {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s/%s: edge %d->%d not mirrored", kind, string(class), n.ID, dst)
					}
				}
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(BH, 'Z'); err == nil {
		t.Error("bad class accepted")
	}
	if _, err := Build(Kind(99), 'A'); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestSequentialHostfile(t *testing.T) {
	hosts := []string{"a", "b", "c"}
	hf := SequentialHostfile(hosts, 7)
	want := []string{"a", "b", "c", "a", "b", "c", "a"}
	for i := range want {
		if hf[i] != want[i] {
			t.Fatalf("hostfile = %v, want %v", hf, want)
		}
	}
}

func TestLocalityHostfileSingleCrossEdge(t *testing.T) {
	p := platform.TwoClusters()
	adonis := p.HostsOfCluster("adonis")
	griffon := p.HostsOfCluster("griffon")
	for _, kind := range []Kind{BH, WH} {
		g := MustBuild(kind, 'A')
		hf := LocalityHostfile(g, adonis, griffon)
		if got := CrossEdges(g, hf, p); got != 1 {
			t.Errorf("%s locality cross edges = %d, want 1", kind, got)
		}
	}
}

func TestSequentialHostfileManyCrossEdges(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'A')
	hf := SequentialHostfile(ClusterHosts(p, "adonis", "griffon"), g.NumNodes())
	seq := CrossEdges(g, hf, p)
	loc := CrossEdges(g, LocalityHostfile(g, p.HostsOfCluster("adonis"), p.HostsOfCluster("griffon")), p)
	if seq <= loc {
		t.Errorf("sequential cross edges (%d) not worse than locality (%d)", seq, loc)
	}
}

func runDT(t *testing.T, hostfile []string, g *Graph, tr *trace.Trace) float64 {
	t.Helper()
	p := platform.TwoClusters()
	e := sim.New(p, tr)
	cfg := DefaultConfig()
	cfg.Waves = 5
	cfg.MessageBytes = 1e6
	Run(e, g, hostfile, cfg)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

func TestRunCompletes(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'S')
	hf := SequentialHostfile(ClusterHosts(p, "adonis", "griffon"), g.NumNodes())
	makespan := runDT(t, hf, g, nil)
	if makespan <= 0 {
		t.Fatalf("makespan = %g", makespan)
	}
}

func TestLocalityBeatsSequential(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'A')
	seqHF := SequentialHostfile(ClusterHosts(p, "adonis", "griffon"), g.NumNodes())
	locHF := LocalityHostfile(g, p.HostsOfCluster("adonis"), p.HostsOfCluster("griffon"))
	seq := runDT(t, seqHF, g, nil)
	loc := runDT(t, locHF, g, nil)
	if loc >= seq {
		t.Errorf("locality makespan %g not better than sequential %g", loc, seq)
	}
}

func TestInterClusterTrafficDropsWithLocality(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'A')

	trSeq := trace.New()
	seq := runDT(t, SequentialHostfile(ClusterHosts(p, "adonis", "griffon"), g.NumNodes()), g, trSeq)
	trLoc := trace.New()
	loc := runDT(t, LocalityHostfile(g, p.HostsOfCluster("adonis"), p.HostsOfCluster("griffon")), g, trLoc)

	bytesOn := func(tr *trace.Trace, link string, end float64) float64 {
		return tr.Timeline(link, trace.MetricTraffic).Integrate(0, end)
	}
	seqBytes := bytesOn(trSeq, "up:adonis", seq)
	locBytes := bytesOn(trLoc, "up:adonis", loc)
	if locBytes >= seqBytes/2 {
		t.Errorf("inter-cluster bytes: locality %g not well below sequential %g", locBytes, seqBytes)
	}
}

// ftConfig slows DT down enough that second-scale outages land inside
// the execution: ~0.5 s computations and 0.1 s transfers on the 1 Gbps
// TwoClusters host links.
func ftConfig() Config {
	return Config{
		Waves:        4,
		MessageBytes: 1e8,
		ComputeFlops: 4e9,
		RecvTimeout:  2,
		MaxRetries:   8,
		RetryBackoff: 0.5,
	}
}

func TestFaultTolerantRunRidesOutChurn(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'S')
	hf := SequentialHostfile(p.HostsOfCluster("adonis"), g.NumNodes())
	tr := trace.New()
	e := sim.New(p, tr)
	// Node 1 (a forwarder, on adonis-2) loses its host for 2 s; node 2
	// (the other forwarder, on adonis-3) loses its link for 2 s.
	sched := fault.MustSchedule(
		fault.Event{Time: 1, Kind: fault.HostDown, Target: "adonis-2"},
		fault.Event{Time: 3, Kind: fault.HostUp, Target: "adonis-2"},
		fault.Event{Time: 1.5, Kind: fault.LinkDown, Target: "lnk:adonis-3"},
		fault.Event{Time: 3.5, Kind: fault.LinkUp, Target: "lnk:adonis-3"},
	)
	if err := e.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	rep := Run(e, g, hf, ftConfig())
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Completed() {
		t.Fatalf("ranks gave up under recoverable churn: %+v", rep.Failed)
	}
	if e.Now() <= 3 {
		t.Errorf("makespan %g does not reflect the 2 s outages", e.Now())
	}
	if d := tr.StateDurations("adonis-2", 0, e.Now())[trace.StateHostDown]; !(d > 1.9) {
		t.Errorf("host_down on adonis-2 for %g s, want ~2", d)
	}
	if d := tr.StateDurations("lnk:adonis-3", 0, e.Now())[trace.StateLinkDown]; !(d > 1.9) {
		t.Errorf("link_down on lnk:adonis-3 for %g s, want ~2", d)
	}
	avail := tr.Timeline("adonis-2", trace.MetricAvailability)
	if avail == nil {
		t.Fatal("no availability timeline for adonis-2")
	}
	if got := avail.At(2); got != 0 {
		t.Errorf("availability(adonis-2, t=2) = %g, want 0", got)
	}
	if got := avail.At(4); got != 1 {
		t.Errorf("availability(adonis-2, t=4) = %g, want 1", got)
	}
}

func TestFaultTolerantRankFailsCleanlyOnPermanentLoss(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'S')
	hf := SequentialHostfile(p.HostsOfCluster("adonis"), g.NumNodes())
	e := sim.New(p, nil)
	// adonis-2 never comes back: node 1 must exhaust its retries and
	// fail cleanly, taking its downstream sinks with it, while the rest
	// of the tree completes and the engine exits without error.
	sched := fault.MustSchedule(fault.Event{Time: 1, Kind: fault.HostDown, Target: "adonis-2"})
	if err := e.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	cfg := ftConfig()
	cfg.MaxRetries = 3
	cfg.RecvTimeout = 1
	rep := Run(e, g, hf, cfg)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Completed() {
		t.Fatal("report claims completion with a permanently dead host")
	}
	failed := map[int]bool{}
	for _, f := range rep.Failed {
		if f.Err == nil {
			t.Errorf("rank %d failed without an error", f.Rank)
		}
		failed[f.Rank] = true
	}
	if !failed[1] {
		t.Errorf("node 1 (on the dead host) not in failures: %+v", rep.Failed)
	}
}

func TestRunReportTriviallyCompleteOnBlockingPath(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'S')
	hf := SequentialHostfile(ClusterHosts(p, "adonis", "griffon"), g.NumNodes())
	e := sim.New(p, nil)
	cfg := DefaultConfig()
	cfg.Waves = 2
	rep := Run(e, g, hf, cfg)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Completed() {
		t.Fatalf("blocking path report not complete: %+v", rep.Failed)
	}
}

func TestRunPanicsOnBadInput(t *testing.T) {
	p := platform.TwoClusters()
	g := MustBuild(WH, 'S')
	e := sim.New(p, nil)
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	assertPanics("short hostfile", func() { Run(e, g, []string{"adonis-1"}, DefaultConfig()) })
	assertPanics("zero waves", func() {
		hf := SequentialHostfile(ClusterHosts(p, "adonis"), g.NumNodes())
		Run(e, g, hf, Config{Waves: 0, MessageBytes: 1})
	})
}

// TestChurnRunIsBitReproducible asserts the acceptance property of the
// fault subsystem: the same churn seed yields a byte-identical trace.
// Float summation order or map iteration sneaking into the engine's
// tracing would break this. The check runs at every engine knob
// combination — lazy vs full recompute, category tracing, state
// tracing. Lazy and full are NOT asserted equal to each other here:
// full recompute settles every flow at every event, and the extra
// intermediate settles round floats differently, which the churn
// workload's timeout races amplify into genuinely different retry
// schedules (the pre-rewrite engine diverged identically; the
// healthy-path and deterministic-fault equivalence is pinned by
// TestLazyAndFullRecomputeEquivalent in internal/sim).
func TestChurnRunIsBitReproducible(t *testing.T) {
	run := func(full, cats, states bool) []byte {
		p := platform.TwoClusters()
		tr := trace.New()
		e := sim.New(p, tr)
		e.SetFullRecompute(full)
		e.TraceCategories(cats)
		e.TraceStates(states)
		var hosts, links []string
		for _, h := range p.Hosts() {
			hosts = append(hosts, h.Name)
			links = append(links, p.HostLink(h.Name))
		}
		sched := fault.Churn(42, fault.ChurnConfig{
			Hosts: hosts, Links: links,
			HostChurn: 0.2, LinkChurn: 0.2, Horizon: 10, MeanDowntime: 2,
		})
		if err := e.InjectFaults(sched); err != nil {
			t.Fatal(err)
		}
		g := MustBuild(WH, 'S')
		hf := SequentialHostfile(p.HostsOfCluster("adonis"), g.NumNodes())
		Run(e, g, hf, ftConfig())
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, full := range []bool{false, true} {
		for _, cats := range []bool{false, true} {
			for _, states := range []bool{false, true} {
				full, cats, states := full, cats, states
				t.Run(fmt.Sprintf("full=%v/cats=%v/states=%v", full, cats, states), func(t *testing.T) {
					a := run(full, cats, states)
					if b := run(full, cats, states); !bytes.Equal(a, b) {
						t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
					}
				})
			}
		}
	}
}
