// Package nasdt implements the NAS Data Traffic (DT) benchmark family used
// by the paper's first case study: layered task graphs — Black Hole, White
// Hole and Shuffle — whose nodes exchange large data quanta through
// forwarder processes, making the benchmark communication-bound and highly
// sensitive to process placement.
//
// This is a from-scratch reimplementation of the benchmark's structure
// rather than a port of the NPB sources (see DESIGN.md, substitutions):
// the class letter selects the number of sources, and the graph families
// reproduce the convergent (BH), divergent (WH) and shuffled (SH)
// communication shapes that the original program builds.
package nasdt

import "fmt"

// Kind selects the communication graph family.
type Kind int

const (
	// BH (Black Hole): many sources converge through a binary reduction of
	// forwarders into a single sink.
	BH Kind = iota
	// WH (White Hole): a single source diverges through a binary expansion
	// of forwarders into many sinks.
	WH
	// SH (Shuffle): equal-width layers connected by a perfect-shuffle
	// pattern.
	SH
)

// String returns the benchmark's short name for the kind.
func (k Kind) String() string {
	switch k {
	case BH:
		return "BH"
	case WH:
		return "WH"
	case SH:
		return "SH"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Class is the NAS problem-class letter. It selects the graph width:
// S → 4, W → 8, A → 16, B → 32 sources (or sinks, for WH).
type Class byte

// Width returns the number of wide-end nodes of the class.
func (c Class) Width() (int, error) {
	switch c {
	case 'S':
		return 4, nil
	case 'W':
		return 8, nil
	case 'A':
		return 16, nil
	case 'B':
		return 32, nil
	default:
		return 0, fmt.Errorf("nasdt: unknown class %q", string(c))
	}
}

// Role of a node in the task graph.
type Role int

const (
	Source Role = iota
	Forwarder
	Sink
)

// Node is one task of the DT graph, mapped to one MPI rank.
type Node struct {
	ID    int
	Role  Role
	Layer int   // 0 = first layer (sources for BH/SH, the source for WH)
	In    []int // IDs of predecessor nodes
	Out   []int // IDs of successor nodes
}

// Graph is a DT task graph. Node IDs are contiguous and equal to MPI
// ranks.
type Graph struct {
	Kind  Kind
	Class Class
	Nodes []*Node
	// Layers lists node IDs layer by layer, wide end ordering preserved.
	Layers [][]int
}

// NumNodes returns the number of tasks (MPI ranks) of the graph.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// Build constructs the DT graph of the given kind and class.
func Build(kind Kind, class Class) (*Graph, error) {
	width, err := class.Width()
	if err != nil {
		return nil, err
	}
	g := &Graph{Kind: kind, Class: class}
	switch kind {
	case BH:
		g.buildConvergent(width)
	case WH:
		g.buildDivergent(width)
	case SH:
		g.buildShuffle(width)
	default:
		return nil, fmt.Errorf("nasdt: unknown kind %d", int(kind))
	}
	return g, nil
}

// MustBuild is Build panicking on error, for constant arguments.
func MustBuild(kind Kind, class Class) *Graph {
	g, err := Build(kind, class)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) newNode(role Role, layer int) *Node {
	n := &Node{ID: len(g.Nodes), Role: role, Layer: layer}
	g.Nodes = append(g.Nodes, n)
	for len(g.Layers) <= layer {
		g.Layers = append(g.Layers, nil)
	}
	g.Layers[layer] = append(g.Layers[layer], n.ID)
	return n
}

func (g *Graph) connect(from, to int) {
	g.Nodes[from].Out = append(g.Nodes[from].Out, to)
	g.Nodes[to].In = append(g.Nodes[to].In, from)
}

// buildConvergent: width sources, then halving layers of forwarders, then
// one sink. width must be a power of two.
func (g *Graph) buildConvergent(width int) {
	layer := 0
	prev := make([]int, 0, width)
	for i := 0; i < width; i++ {
		prev = append(prev, g.newNode(Source, layer).ID)
	}
	for w := width / 2; w >= 1; w /= 2 {
		layer++
		role := Forwarder
		if w == 1 {
			role = Sink
		}
		cur := make([]int, 0, w)
		for i := 0; i < w; i++ {
			n := g.newNode(role, layer)
			g.connect(prev[2*i], n.ID)
			g.connect(prev[2*i+1], n.ID)
			cur = append(cur, n.ID)
		}
		prev = cur
	}
}

// buildDivergent: one source, then doubling layers of forwarders, then
// width sinks — the mirror image of buildConvergent.
func (g *Graph) buildDivergent(width int) {
	layer := 0
	prev := []int{g.newNode(Source, layer).ID}
	for w := 2; w <= width; w *= 2 {
		layer++
		role := Forwarder
		if w == width {
			role = Sink
		}
		cur := make([]int, 0, w)
		for i := 0; i < w; i++ {
			n := g.newNode(role, layer)
			g.connect(prev[i/2], n.ID)
			cur = append(cur, n.ID)
		}
		prev = cur
	}
}

// buildShuffle: three layers of equal width (sources, forwarders, sinks)
// wired by the perfect shuffle: node i of a layer feeds nodes (2i) mod w
// and (2i+1) mod w of the next.
func (g *Graph) buildShuffle(width int) {
	var srcs, fwds, sinks []int
	for i := 0; i < width; i++ {
		srcs = append(srcs, g.newNode(Source, 0).ID)
	}
	for i := 0; i < width; i++ {
		fwds = append(fwds, g.newNode(Forwarder, 1).ID)
	}
	for i := 0; i < width; i++ {
		sinks = append(sinks, g.newNode(Sink, 2).ID)
	}
	for i := 0; i < width; i++ {
		g.connect(srcs[i], fwds[(2*i)%width])
		g.connect(srcs[i], fwds[(2*i+1)%width])
		g.connect(fwds[i], sinks[(2*i)%width])
		g.connect(fwds[i], sinks[(2*i+1)%width])
	}
}
