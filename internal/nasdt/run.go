package nasdt

import (
	"fmt"

	"viva/internal/mpi"
	"viva/internal/sim"
)

// Config tunes one benchmark execution.
type Config struct {
	// Waves is how many data quanta each source emits; successive waves
	// pipeline through the forwarder layers, giving the execution its
	// beginning / middle / end temporal structure.
	Waves int
	// MessageBytes is the payload carried by each graph edge per wave.
	MessageBytes float64
	// ComputeFlops is the per-node work per wave (small: DT is
	// communication-bound).
	ComputeFlops float64
	// Category tags the traced activity (defaults to "dt").
	Category string
}

// DefaultConfig mirrors the communication-bound regime of DT class A on
// gigabit clusters: 4 MB messages, negligible computation, 20 waves.
func DefaultConfig() Config {
	return Config{
		Waves:        20,
		MessageBytes: 4e6,
		ComputeFlops: 1e6,
		Category:     "dt",
	}
}

// Run spawns the benchmark's processes on the engine; the caller then
// calls e.Run() and reads the makespan from e.Now(). hostfile[i] is the
// host of graph node i.
func Run(e *sim.Engine, g *Graph, hostfile []string, cfg Config) {
	if len(hostfile) != g.NumNodes() {
		panic(fmt.Sprintf("nasdt: hostfile has %d entries for %d nodes", len(hostfile), g.NumNodes()))
	}
	if cfg.Waves <= 0 {
		panic("nasdt: config needs at least one wave")
	}
	cat := cfg.Category
	if cat == "" {
		cat = "dt"
	}
	job := fmt.Sprintf("dt-%s-%s", g.Kind, string(g.Class))
	mpi.World(e, job, hostfile, func(r *mpi.Rank) {
		r.SetCategory(cat)
		node := g.Nodes[r.Rank()]
		for wave := 0; wave < cfg.Waves; wave++ {
			// Gather one quantum from every predecessor.
			if len(node.In) > 0 {
				comms := make([]*sim.Comm, len(node.In))
				for i, src := range node.In {
					comms[i] = r.Irecv(src)
				}
				r.WaitAll(comms)
			}
			// Local processing.
			r.Compute(cfg.ComputeFlops)
			// Scatter one quantum to every successor.
			if len(node.Out) > 0 {
				comms := make([]*sim.Comm, len(node.Out))
				for i, dst := range node.Out {
					comms[i] = r.Isend(dst, wave, cfg.MessageBytes)
				}
				r.WaitAll(comms)
			}
		}
	})
}
