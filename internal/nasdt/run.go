package nasdt

import (
	"fmt"

	"viva/internal/mpi"
	"viva/internal/sim"
)

// Config tunes one benchmark execution.
type Config struct {
	// Waves is how many data quanta each source emits; successive waves
	// pipeline through the forwarder layers, giving the execution its
	// beginning / middle / end temporal structure.
	Waves int
	// MessageBytes is the payload carried by each graph edge per wave.
	MessageBytes float64
	// ComputeFlops is the per-node work per wave (small: DT is
	// communication-bound).
	ComputeFlops float64
	// Category tags the traced activity (defaults to "dt").
	Category string

	// RecvTimeout arms the fault-tolerant protocol: every communication
	// waits at most this many simulated seconds per attempt instead of
	// forever, and failed attempts are retried with exponential backoff,
	// so the benchmark rides out host churn (transient crashes between
	// computations) and link outages. Zero (the default) keeps the plain
	// blocking protocol. The timeout bounds the wait for a partner only:
	// a matched transfer is always allowed to finish, so no message is
	// ever lost or duplicated by an expiring deadline.
	RecvTimeout float64
	// MaxRetries is the attempt budget per operation on the
	// fault-tolerant path (default 5).
	MaxRetries int
	// RetryBackoff is the pause after a failed attempt, doubling each
	// further failure (default 1 simulated second).
	RetryBackoff float64
}

// RankFailure records one rank giving up after exhausting its retries.
type RankFailure struct {
	Rank int
	Time float64
	Err  error
}

// Report is the outcome of a fault-tolerant run, filled in while the
// engine executes. The engine schedules actors one at a time, so ranks
// append to it without synchronisation.
type Report struct {
	Failed []RankFailure
}

// Completed reports whether every rank finished all its waves.
func (rep *Report) Completed() bool { return len(rep.Failed) == 0 }

// DefaultConfig mirrors the communication-bound regime of DT class A on
// gigabit clusters: 4 MB messages, negligible computation, 20 waves.
func DefaultConfig() Config {
	return Config{
		Waves:        20,
		MessageBytes: 4e6,
		ComputeFlops: 1e6,
		Category:     "dt",
	}
}

// Run spawns the benchmark's processes on the engine; the caller then
// calls e.Run() and reads the makespan from e.Now(). hostfile[i] is the
// host of graph node i. The returned Report is filled in while the
// engine runs; on the plain blocking path (RecvTimeout zero) it stays
// trivially complete.
func Run(e *sim.Engine, g *Graph, hostfile []string, cfg Config) *Report {
	if len(hostfile) != g.NumNodes() {
		panic(fmt.Sprintf("nasdt: hostfile has %d entries for %d nodes", len(hostfile), g.NumNodes()))
	}
	if cfg.Waves <= 0 {
		panic("nasdt: config needs at least one wave")
	}
	cat := cfg.Category
	if cat == "" {
		cat = "dt"
	}
	rep := &Report{}
	job := fmt.Sprintf("dt-%s-%s", g.Kind, string(g.Class))
	if cfg.RecvTimeout > 0 {
		runFT(e, g, hostfile, cfg, cat, job, rep)
		return rep
	}
	mpi.World(e, job, hostfile, func(r *mpi.Rank) {
		r.SetCategory(cat)
		node := g.Nodes[r.Rank()]
		for wave := 0; wave < cfg.Waves; wave++ {
			// Gather one quantum from every predecessor.
			if len(node.In) > 0 {
				comms := make([]*sim.Comm, len(node.In))
				for i, src := range node.In {
					comms[i] = r.Irecv(src)
				}
				r.WaitAll(comms)
			}
			// Local processing.
			r.Compute(cfg.ComputeFlops)
			// Scatter one quantum to every successor.
			if len(node.Out) > 0 {
				comms := make([]*sim.Comm, len(node.Out))
				for i, dst := range node.Out {
					comms[i] = r.Isend(dst, wave, cfg.MessageBytes)
				}
				r.WaitAll(comms)
			}
		}
	})
	return rep
}

// runFT is the fault-tolerant execution: every operation is bounded by
// RecvTimeout and retried with exponential backoff, so transient host
// and link outages stall a rank instead of killing the run. A rank that
// exhausts its budget records a RankFailure and exits cleanly. Receives
// are taken one predecessor at a time — with rendezvous semantics a
// canceled receive must leave nothing behind for the retry to collide
// with, which the sequential protocol guarantees.
func runFT(e *sim.Engine, g *Graph, hostfile []string, cfg Config, cat, job string, rep *Report) {
	retries := cfg.MaxRetries
	if retries <= 0 {
		retries = 5
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 1
	}
	mpi.World(e, job, hostfile, func(r *mpi.Rank) {
		r.SetCategory(cat)
		node := g.Nodes[r.Rank()]
		fail := func(err error) {
			rep.Failed = append(rep.Failed, RankFailure{Rank: r.Rank(), Time: r.Now(), Err: err})
		}
		for wave := 0; wave < cfg.Waves; wave++ {
			for _, src := range node.In {
				// Receivers listen contiguously (no backoff): the timeout
				// itself paces the retry, so there is always a receive
				// posted for the sender's attempts to land on. Only
				// senders back off.
				err := r.Retry(retries, 0, func(int) error {
					_, e2 := r.RecvTimeout(src, cfg.RecvTimeout)
					return e2
				})
				if err != nil {
					fail(fmt.Errorf("nasdt: wave %d recv from %d: %w", wave, src, err))
					return
				}
			}
			if err := r.Retry(retries, backoff, func(int) error {
				return r.TryCompute(cfg.ComputeFlops)
			}); err != nil {
				fail(fmt.Errorf("nasdt: wave %d compute: %w", wave, err))
				return
			}
			for _, dst := range node.Out {
				wave := wave
				err := r.Retry(retries, backoff, func(int) error {
					return r.SendTimeout(dst, wave, cfg.MessageBytes, cfg.RecvTimeout)
				})
				if err != nil {
					fail(fmt.Errorf("nasdt: wave %d send to %d: %w", wave, dst, err))
					return
				}
			}
		}
	})
}
