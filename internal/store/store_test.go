package store

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"viva/internal/aggregation"
	"viva/internal/trace"
)

// The store is a drop-in aggregation source.
var _ aggregation.Source = (*Store)(nil)

// writeTempStore serialises tr to a temp .vvc and opens it.
func writeTempStore(t *testing.T, tr *trace.Trace, wopt WriterOptions, oopt OpenOptions) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.vvc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(f, tr, wopt); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OpenWith(path, oopt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// randomTrace builds a trace with several resources and metrics, point
// counts straddling typical chunk sizes, and an occasional equal-time
// overwrite (the trace model allows it).
func randomTrace(t *testing.T, rng *rand.Rand, events int) *trace.Trace {
	t.Helper()
	tr := trace.New()
	tr.MustDeclareResource("root", trace.TypeGroup, "")
	names := []string{"h0", "h1", "l0"}
	tr.MustDeclareResource("h0", trace.TypeHost, "root")
	tr.MustDeclareResource("h1", trace.TypeHost, "root")
	tr.MustDeclareResource("l0", trace.TypeLink, "root")
	tr.MustDeclareEdge("h0", "l0")
	tr.MustDeclareEdge("h1", "l0")
	metrics := []string{trace.MetricPower, trace.MetricUsage}
	now := 0.0
	for i := 0; i < events; i++ {
		if rng.Intn(8) != 0 {
			now += rng.Float64()
		}
		r := names[rng.Intn(len(names))]
		m := metrics[rng.Intn(len(metrics))]
		if err := tr.Set(now, r, m, math.Round(rng.NormFloat64()*100)/4); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.SetState(1, "h0", "compute"); err != nil {
		t.Fatal(err)
	}
	tr.SetEnd(now + 1)
	return tr
}

// TestDifferentialSeries is the tentpole's correctness proof: every
// Series query on a ColumnSeries must be bit-identical to the in-heap
// Timeline over randomized windows, including the b<a and [a,a] edge
// semantics.
func TestDifferentialSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, chunkPoints := range []int{1, 3, 16, DefaultChunkPoints} {
		tr := randomTrace(t, rng, 700)
		st := writeTempStore(t, tr, WriterOptions{ChunkPoints: chunkPoints}, OpenOptions{})
		_, end := tr.Window()
		for _, r := range tr.Resources() {
			for _, m := range tr.MetricsOf(r.Name) {
				heap := tr.Series(r.Name, m)
				disk := st.Series(r.Name, m)
				if heap.Len() != disk.Len() {
					t.Fatalf("chunk=%d %s/%s: Len %d != %d", chunkPoints, r.Name, m, disk.Len(), heap.Len())
				}
				if heap.FirstTime() != disk.FirstTime() || heap.LastTime() != disk.LastTime() {
					t.Fatalf("chunk=%d %s/%s: First/Last mismatch", chunkPoints, r.Name, m)
				}
				check := func(a, b float64) bool {
					return heap.At(a) == disk.At(a) &&
						heap.Integrate(a, b) == disk.Integrate(a, b) &&
						heap.Mean(a, b) == disk.Mean(a, b) &&
						heap.Max(a, b) == disk.Max(a, b) &&
						heap.Min(a, b) == disk.Min(a, b)
				}
				prop := func(x, y float64) bool {
					a := math.Mod(math.Abs(x), end+2) - 1
					b := math.Mod(math.Abs(y), end+2) - 1
					return check(a, b) && check(b, a) && check(a, a)
				}
				if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
					t.Errorf("chunk=%d %s/%s: %v", chunkPoints, r.Name, m, err)
				}
				// Exact chunk-boundary times are the off-by-one hot spots.
				for _, p := range tr.Timeline(r.Name, m).Points() {
					if !check(p.T, p.T+0.5) || !check(p.T-0.5, p.T) {
						t.Fatalf("chunk=%d %s/%s: mismatch at point t=%g", chunkPoints, r.Name, m, p.T)
					}
				}
			}
		}
		if err := st.Err(); err != nil {
			t.Fatalf("chunk=%d: store error: %v", chunkPoints, err)
		}
	}
}

// TestRoundTrip: WriteTrace → Open → ReadAll must reproduce the trace
// exactly — catalog, edges, states, window and every timeline.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomTrace(t, rng, 500)
	st := writeTempStore(t, tr, WriterOptions{ChunkPoints: 16}, OpenOptions{})

	back, err := st.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := trace.Write(&a, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(&b, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("round-tripped trace serialises differently")
	}

	// Catalog views must agree too.
	if got, want := st.Metrics(), tr.Metrics(); len(got) != len(want) {
		t.Fatalf("Metrics %v != %v", got, want)
	}
	ws, we := tr.Window()
	ss, se := st.Window()
	if ws != ss || we != se {
		t.Fatalf("Window (%g,%g) != (%g,%g)", ss, se, ws, we)
	}
	if st.StateAt("h0", 2) != "compute" {
		t.Fatal("state lost in round trip")
	}
}

// TestStoreAggregation runs the real aggregation engine over both
// backends: identical Stats on every group×metric×slice.
func TestStoreAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(t, rng, 600)
	st := writeTempStore(t, tr, WriterOptions{ChunkPoints: 8}, OpenOptions{CacheBytes: 1 << 12})

	agHeap, err := aggregation.NewAggregator(tr)
	if err != nil {
		t.Fatal(err)
	}
	agDisk, err := aggregation.NewAggregator(st)
	if err != nil {
		t.Fatal(err)
	}
	_, end := tr.Window()
	for i := 0; i < 50; i++ {
		a := rng.Float64() * end
		s := aggregation.TimeSlice{Start: a, End: a + rng.Float64()*end/4}
		for _, metric := range []string{trace.MetricPower, trace.MetricUsage} {
			h, err := agHeap.Stats("root", trace.TypeHost, metric, s)
			if err != nil {
				t.Fatal(err)
			}
			d, err := agDisk.Stats("root", trace.TypeHost, metric, s)
			if err != nil {
				t.Fatal(err)
			}
			if h != d {
				t.Fatalf("Stats(%v, %s): heap %+v != disk %+v", s, metric, h, d)
			}
		}
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestWriterOutOfOrder: the streaming writer refuses to go back in time
// with the sentinel the compactor's fallback keys on.
func TestWriterOutOfOrder(t *testing.T) {
	w, err := NewWriter(&bytes.Buffer{}, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DeclareResource("h", trace.TypeHost, ""); err != nil {
		t.Fatal(err)
	}
	if err := w.Set(5, "h", "m", 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Set(5, "h", "m", 2); err != nil {
		t.Fatal(err) // equal-time overwrite is legal
	}
	err = w.Set(4, "h", "m", 3)
	if err == nil || !isOutOfOrder(err) {
		t.Fatalf("want ErrOutOfOrder, got %v", err)
	}
}

func isOutOfOrder(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == ErrOutOfOrder {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// TestOpenRejectsCorrupt exercises the failure paths the fuzz target
// walks: truncation, bad magic, flipped footer bytes must all error.
func TestOpenRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := randomTrace(t, rng, 200)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, WriterOptions{ChunkPoints: 8}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	openBytes := func(b []byte) error {
		path := filepath.Join(t.TempDir(), "c.vvc")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path)
		if err == nil {
			st.Close()
		}
		return err
	}

	if err := openBytes(valid); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 1, len(valid) - trailerSize} {
		if err := openBytes(valid[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	bad := append([]byte(nil), valid...)
	bad[0] = 'X'
	if err := openBytes(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Flip a byte in the footer region: CRC must catch it.
	bad = append([]byte(nil), valid...)
	bad[len(bad)-trailerSize-5] ^= 0xff
	if err := openBytes(bad); err == nil {
		t.Error("corrupt footer accepted")
	}
}
