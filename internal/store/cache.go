package store

import (
	"bytes"
	"compress/flate"
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"viva/internal/obs"
)

// Chunk-cache observability: the hit ratio tells whether the cache is
// sized for the access pattern (scrubbing revisits boundary chunks
// constantly); evictions against a low hit rate mean thrashing.
var (
	obsCacheHits = obs.Default.Counter("viva_store_chunk_cache_hits_total",
		"Chunk-cache lookups answered without touching the file.")
	obsCacheMisses = obs.Default.Counter("viva_store_chunk_cache_misses_total",
		"Chunk-cache lookups that read and decoded a chunk from disk.")
	obsCacheEvictions = obs.Default.Counter("viva_store_chunk_cache_evictions_total",
		"Chunks evicted from the bounded cache to stay under its byte budget.")
	obsCacheBytes = obs.Default.Gauge("viva_store_chunk_cache_bytes",
		"Decoded bytes currently resident in the (most recently used) store's chunk cache.")
)

// DefaultCacheBytes bounds the decoded chunks a store keeps resident:
// 4 MiB ≈ 170 chunks of DefaultChunkPoints — plenty for the boundary
// chunks of interactive scrubbing, a rounding error next to a large
// trace.
const DefaultCacheBytes = 4 << 20

// chunkData is one decoded chunk: parallel point arrays plus the
// column-absolute prefix sums. Immutable once decoded; shared by every
// reader that hits the cache.
type chunkData struct {
	times  []float64
	values []float64
	prefix []float64
}

type cacheKey struct{ col, chunk int }

type cacheEntry struct {
	key   cacheKey
	data  *chunkData
	bytes int64
}

// chunkCache is a byte-bounded LRU over decoded chunks, one per open
// store. Lookups are mutex-protected; the read+decode of a miss runs
// outside the lock (file ReadAt is pread, concurrent-safe), so parallel
// readers miss independently and the first insert wins.
type chunkCache struct {
	readAt  io.ReaderAt
	maxB    int64
	hits    atomic.Int64 // per-store mirrors of the global counters
	misses  atomic.Int64
	mu      sync.Mutex
	size    int64
	ll      *list.List // front = most recently used
	entries map[cacheKey]*list.Element
}

func newChunkCache(r io.ReaderAt, maxBytes int64) *chunkCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &chunkCache{
		readAt:  r,
		maxB:    maxBytes,
		ll:      list.New(),
		entries: make(map[cacheKey]*list.Element),
	}
}

// get returns the decoded chunk, from cache or disk.
func (c *chunkCache) get(col, chunk int, m *chunkMeta) (*chunkData, error) {
	key := cacheKey{col, chunk}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		obsCacheHits.Inc()
		c.hits.Add(1)
		return el.Value.(*cacheEntry).data, nil
	}
	c.mu.Unlock()
	obsCacheMisses.Inc()
	c.misses.Add(1)

	data, err := readChunk(c.readAt, m)
	if err != nil {
		return nil, err
	}
	sz := int64(m.ulen)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A racing reader inserted the same chunk; share its copy.
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).data, nil
	}
	if sz > c.maxB {
		// Oversized chunk: serve it without caching rather than flushing
		// the whole cache for one query.
		return data, nil
	}
	evicted, freed := int64(0), int64(0)
	for c.size+sz > c.maxB {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, ev.key)
		c.size -= ev.bytes
		obsCacheEvictions.Inc()
		evicted++
		freed += ev.bytes
	}
	if evicted > 0 {
		// One flight event per insert-that-evicted, not per chunk: an
		// eviction storm then reads as a run of events with rising counts
		// instead of flooding the ring.
		obs.Flight.Record(obs.FlightStoreEvict, 0, evicted, freed)
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, data: data, bytes: sz})
	c.size += sz
	obsCacheBytes.Set(float64(c.size))
	return data, nil
}

// readChunk preads and decodes one chunk blob.
func readChunk(r io.ReaderAt, m *chunkMeta) (*chunkData, error) {
	stored := make([]byte, m.clen)
	if _, err := r.ReadAt(stored, int64(m.off)); err != nil {
		return nil, fmt.Errorf("store: reading chunk at %d: %w", m.off, err)
	}
	raw := stored
	if m.enc == encFlate {
		fr := flate.NewReader(bytes.NewReader(stored))
		raw = make([]byte, m.ulen)
		if _, err := io.ReadFull(fr, raw); err != nil {
			return nil, fmt.Errorf("store: decompressing chunk at %d: %w", m.off, err)
		}
		// A corrupt stream may inflate past ulen; reject instead of
		// silently truncating.
		if n, _ := fr.Read(make([]byte, 1)); n != 0 {
			return nil, fmt.Errorf("store: chunk at %d inflates past its declared size", m.off)
		}
	}
	if len(raw) != int(m.ulen) {
		return nil, fmt.Errorf("store: chunk at %d has %d bytes, want %d", m.off, len(raw), m.ulen)
	}
	n := int(m.count)
	all := make([]float64, 3*n)
	for i := range all {
		all[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return &chunkData{times: all[:n], values: all[n : 2*n], prefix: all[2*n : 3*n]}, nil
}
