package store

import (
	"encoding/json"
	"hash/fnv"
	"testing"

	"viva/internal/core"
	"viva/internal/masterworker"
	"viva/internal/platform"
	"viva/internal/sim"
	"viva/internal/trace"
)

// simTrace runs a small master-worker simulation on a two-cluster
// platform: a realistic example trace with hierarchy, edges, per-app
// categories and fault-free metrics.
func simTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := platform.New("grid")
	p.AddSite("site1", platform.SiteConfig{BackboneBandwidth: 1 * platform.GB, UplinkBandwidth: 1 * platform.GB})
	p.AddCluster("site1", "c1", platform.ClusterConfig{
		Hosts: 8, HostPower: 1 * platform.GFlops, HostLinkBandwidth: 125 * platform.MB,
		BackboneBandwidth: 1 * platform.GB, UplinkBandwidth: 1 * platform.GB,
	})
	p.AddCluster("site1", "c2", platform.ClusterConfig{
		Hosts: 4, HostPower: 2 * platform.GFlops, HostLinkBandwidth: 125 * platform.MB,
		BackboneBandwidth: 1 * platform.GB, UplinkBandwidth: 1 * platform.GB,
	})
	tr := trace.New()
	e := sim.New(p, tr)
	e.TraceCategories(true)
	var hosts []string
	for _, h := range p.Hosts() {
		hosts = append(hosts, h.Name)
	}
	app := &masterworker.App{
		Name: "app", MasterHost: hosts[0], Workers: hosts, TaskCount: 200,
		TaskFlops: 50 * platform.MFlops, TaskBytes: 100 * platform.KB,
		ResultBytes: 10 * platform.KB, Strategy: masterworker.BandwidthCentric,
	}
	if _, err := masterworker.Deploy(e, app); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// graphHash fingerprints everything the visualization would draw:
// nodes, edges and all their visual attributes.
func graphHash(t *testing.T, v *core.View) uint64 {
	t.Helper()
	g, err := v.Graph()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(struct {
		Nodes, Edges any
	}{g.Nodes, g.Edges})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}

// TestVizgraphHashIdentical is the end-to-end acceptance check: the
// visual graph built from the on-disk store must hash identically to
// the one built from the in-heap trace, across hierarchy levels and
// scrubbed time slices — the store is invisible to the visualization.
func TestVizgraphHashIdentical(t *testing.T) {
	tr := simTrace(t)
	st := writeTempStore(t, tr, WriterOptions{ChunkPoints: 64}, OpenOptions{CacheBytes: 1 << 14})

	vHeap, err := core.NewView(tr)
	if err != nil {
		t.Fatal(err)
	}
	vDisk, err := core.NewViewOf(st)
	if err != nil {
		t.Fatal(err)
	}
	if vDisk.Trace() != nil {
		t.Fatal("store-backed view claims to hold a heap trace")
	}

	_, end := tr.Window()
	for _, level := range []int{2, 1, 0} {
		if err := vHeap.SetLevel(level); err != nil {
			t.Fatal(err)
		}
		if err := vDisk.SetLevel(level); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			a := float64(i) / 8 * end
			b := a + end/8
			if err := vHeap.SetTimeSlice(a, b); err != nil {
				t.Fatal(err)
			}
			if err := vDisk.SetTimeSlice(a, b); err != nil {
				t.Fatal(err)
			}
			hh, dh := graphHash(t, vHeap), graphHash(t, vDisk)
			if hh != dh {
				t.Fatalf("level %d slice [%g,%g]: graph hash %016x != %016x", level, a, b, dh, hh)
			}
		}
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}
