package store

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"viva/internal/ingest"
	"viva/internal/trace"
)

// compactAndCompare compacts the serialized trace file and checks the
// result materializes back to the exact same trace.
func compactAndCompare(t *testing.T, tr *trace.Trace, srcBytes []byte) {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join(dir, "in.trace")
	dst := filepath.Join(dir, "out.vvc")
	if err := os.WriteFile(src, srcBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CompactFile(src, dst, ingest.Options{}, WriterOptions{ChunkPoints: 32}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	back, err := st.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := trace.Write(&want, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(&got, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("compacted trace differs from source")
	}
}

func TestCompactFileStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(t, rng, 400)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	compactAndCompare(t, tr, buf.Bytes())
}

func TestCompactFileGzip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := randomTrace(t, rng, 300)
	var plain, zipped bytes.Buffer
	if err := trace.Write(&plain, tr); err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(&zipped)
	if _, err := gz.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	compactAndCompare(t, tr, zipped.Bytes())
}

// TestCompactFileOutOfOrderFallback: a native file whose events go back
// in time within a column cannot stream; CompactFile must transparently
// fall back to the materializing path and still produce an equivalent
// store.
func TestCompactFileOutOfOrderFallback(t *testing.T) {
	src := []byte(`# viva trace v1
resource h host -
set 10 h usage 5
set 4 h usage 2
set 20 h usage 7
end 30
`)
	tr, err := trace.Read(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	compactAndCompare(t, tr, src)
}

// TestCompactFileColumnarInput: recompacting a .vvc (e.g. with a
// different chunk size) goes through the materializing path.
func TestCompactFileColumnarInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := randomTrace(t, rng, 200)
	var vvc bytes.Buffer
	if err := WriteTrace(&vvc, tr, WriterOptions{ChunkPoints: 8}); err != nil {
		t.Fatal(err)
	}
	compactAndCompare(t, tr, vvc.Bytes())
}
