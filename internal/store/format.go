// Package store is the out-of-core columnar trace store: an on-disk
// binary format (.vvc) holding one column per (resource, metric) pair,
// split into fixed-size chunks of (time, value) points that carry their
// own precomputed cumulative-integral prefix sums and min/max, plus a
// footer with the resource/edge/state catalog and a chunk directory.
//
// The point is Equation 1 off disk: a windowed Integrate/Mean touches at
// most the two boundary chunks of the window (interior chunks answer
// from the directory's precomputed sums without being read at all), and
// Max/Min read only boundary chunks (interior chunks answer from their
// directory min/max). Reads go through pread on the open file and a
// bounded LRU chunk cache shared per store, so serving interactive
// scrubbing over an arbitrarily large trace needs resident heap
// proportional to the cache, not the trace.
//
// # File layout
//
//	magic "VVC1"
//	chunk blob*          (per-column chunks, interleaved in flush order)
//	footer               (catalog + chunk directory, see below)
//	footerLen u64 | crc32(footer) u32 | magic "VVC1"     (16-byte trailer)
//
// Every fixed-width integer and float is little-endian; variable-width
// integers are uvarints. A chunk blob is the raw concatenation
// times[count] ++ values[count] ++ prefix[count] (float64 each, so
// 24*count bytes), optionally flate-compressed when that makes it
// smaller. prefix[i] is the ABSOLUTE cumulative integral of the column's
// step function up to point i, computed by the same left-to-right
// recurrence the in-heap timeline index uses — which is what makes
// store-backed query results bit-identical to heap-backed ones.
//
// The footer holds: the resource catalog (name/type/parent, declaration
// order), topology edges (resource indices), per-resource state events
// (states are footer-resident: they are a small behavioural annotation,
// not a column — a deliberate scope limit), the observation-window end,
// and the column directory: per column the resource index, metric name
// and per-chunk metadata (offset, compressed/uncompressed length,
// encoding, point count, first/last time, last value, first/last prefix,
// min/max value).
package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Magic identifies a columnar trace file; it both opens the file and
// closes the trailer.
const Magic = "VVC1"

// trailerSize is the fixed byte length of the end-of-file trailer:
// footerLen u64 + crc32 u32 + magic.
const trailerSize = 8 + 4 + 4

// Chunk encodings.
const (
	encRaw   = 0 // times ++ values ++ prefix, raw little-endian float64s
	encFlate = 1 // the same bytes, DEFLATE-compressed
)

// DefaultChunkPoints is the default number of points per chunk: 24 KiB
// raw, small enough that a boundary-chunk decompression stays cheap,
// large enough that the directory stays tiny next to the data.
const DefaultChunkPoints = 1024

// IsColumnar reports whether head starts a .vvc columnar trace file.
func IsColumnar(head []byte) bool {
	return len(head) >= len(Magic) && string(head[:len(Magic)]) == Magic
}

// chunkMeta is one directory entry: everything needed to locate, decode
// and — for windows that cover the chunk entirely — answer from, one
// chunk, without touching the blob.
type chunkMeta struct {
	off       uint64 // blob offset from file start
	clen      uint32 // stored (possibly compressed) length
	ulen      uint32 // raw length, 24*count
	enc       uint8
	count     uint32
	firstT    float64 // times[0]
	lastT     float64 // times[count-1]
	lastV     float64 // values[count-1]
	prefFirst float64 // prefix[0]
	prefLast  float64 // prefix[count-1]
	min, max  float64 // extrema of values
}

// column is one (resource, metric) directory entry.
type column struct {
	resource string
	metric   string
	chunks   []chunkMeta
	points   int // total count across chunks
}

// stateEvent mirrors trace state points in the footer.
type stateEvent struct {
	t     float64
	value string
}

// footer is the decoded catalog + directory.
type footer struct {
	resources []resourceDecl
	edges     [][2]uint32 // indices into resources
	states    map[uint32][]stateEvent
	end       float64
	cols      []column
}

type resourceDecl struct {
	name, typ, parent string
}

// --- encoding ---

type footerEncoder struct{ buf []byte }

func (e *footerEncoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *footerEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *footerEncoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// encodeChunkPayload lays out times ++ values ++ prefix as raw
// little-endian float64s into dst (reused across flushes).
func encodeChunkPayload(dst []byte, times, values, prefix []float64) []byte {
	dst = dst[:0]
	for _, s := range [][]float64{times, values, prefix} {
		for _, v := range s {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// --- decoding ---

// byteReader decodes the footer with bounds checks everywhere: corrupt
// or truncated input must surface as an error, never a panic.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("store: corrupt uvarint at footer offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) str(maxLen int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) || int(n) > r.remaining() {
		return "", fmt.Errorf("store: string length %d out of bounds at footer offset %d", n, r.off)
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *byteReader) f64() (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("store: truncated float at footer offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

// maxName bounds any single name in the catalog; far above anything the
// generators produce, low enough to reject corrupt lengths early.
const maxName = 1 << 16

// decodeFooter parses the footer bytes (CRC already verified by the
// caller). dataEnd is the offset where the footer begins, i.e. the
// exclusive upper bound for every chunk blob.
func decodeFooter(b []byte, dataEnd uint64) (*footer, error) {
	r := &byteReader{b: b}
	f := &footer{states: make(map[uint32][]stateEvent)}

	nRes, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each resource needs at least 3 length bytes; reject absurd counts
	// before allocating.
	if nRes > uint64(r.remaining()) {
		return nil, fmt.Errorf("store: resource count %d exceeds footer size", nRes)
	}
	f.resources = make([]resourceDecl, nRes)
	for i := range f.resources {
		if f.resources[i].name, err = r.str(maxName); err != nil {
			return nil, err
		}
		if f.resources[i].typ, err = r.str(maxName); err != nil {
			return nil, err
		}
		if f.resources[i].parent, err = r.str(maxName); err != nil {
			return nil, err
		}
	}

	nEdges, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nEdges > uint64(r.remaining()) {
		return nil, fmt.Errorf("store: edge count %d exceeds footer size", nEdges)
	}
	f.edges = make([][2]uint32, nEdges)
	for i := range f.edges {
		for j := 0; j < 2; j++ {
			idx, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if idx >= nRes {
				return nil, fmt.Errorf("store: edge resource index %d out of range", idx)
			}
			f.edges[i][j] = uint32(idx)
		}
	}

	nStateRes, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nStateRes > nRes {
		return nil, fmt.Errorf("store: stateful resource count %d exceeds resource count", nStateRes)
	}
	for i := uint64(0); i < nStateRes; i++ {
		idx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if idx >= nRes {
			return nil, fmt.Errorf("store: state resource index %d out of range", idx)
		}
		nPts, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nPts > uint64(r.remaining()) {
			return nil, fmt.Errorf("store: state point count %d exceeds footer size", nPts)
		}
		pts := make([]stateEvent, nPts)
		for j := range pts {
			if pts[j].t, err = r.f64(); err != nil {
				return nil, err
			}
			if pts[j].value, err = r.str(maxName); err != nil {
				return nil, err
			}
		}
		f.states[uint32(idx)] = pts
	}

	if f.end, err = r.f64(); err != nil {
		return nil, err
	}

	nCols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nCols > uint64(r.remaining()) {
		return nil, fmt.Errorf("store: column count %d exceeds footer size", nCols)
	}
	f.cols = make([]column, nCols)
	for c := range f.cols {
		col := &f.cols[c]
		idx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if idx >= nRes {
			return nil, fmt.Errorf("store: column resource index %d out of range", idx)
		}
		col.resource = f.resources[idx].name
		if col.metric, err = r.str(maxName); err != nil {
			return nil, err
		}
		nChunks, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nChunks > uint64(r.remaining()) {
			return nil, fmt.Errorf("store: chunk count %d exceeds footer size", nChunks)
		}
		col.chunks = make([]chunkMeta, nChunks)
		for k := range col.chunks {
			if err := decodeChunkMeta(r, &col.chunks[k], dataEnd); err != nil {
				return nil, err
			}
			m := &col.chunks[k]
			col.points += int(m.count)
			if k > 0 && m.firstT <= col.chunks[k-1].lastT {
				return nil, fmt.Errorf("store: column %s/%s chunk %d not time-ordered", col.resource, col.metric, k)
			}
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after footer", r.remaining())
	}
	return f, nil
}

func decodeChunkMeta(r *byteReader, m *chunkMeta, dataEnd uint64) error {
	off, err := r.uvarint()
	if err != nil {
		return err
	}
	clen, err := r.uvarint()
	if err != nil {
		return err
	}
	ulen, err := r.uvarint()
	if err != nil {
		return err
	}
	enc, err := r.uvarint()
	if err != nil {
		return err
	}
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	if count == 0 || count > math.MaxUint32 || ulen != 24*count || ulen > math.MaxUint32 || clen > math.MaxUint32 {
		return fmt.Errorf("store: chunk count %d / raw length %d inconsistent", count, ulen)
	}
	if enc != encRaw && enc != encFlate {
		return fmt.Errorf("store: unknown chunk encoding %d", enc)
	}
	if clen == 0 || off < uint64(len(Magic)) || off+clen > dataEnd || off+clen < off {
		return fmt.Errorf("store: chunk [%d, +%d) outside data section", off, clen)
	}
	if enc == encRaw && clen != ulen {
		return fmt.Errorf("store: raw chunk stored length %d != %d", clen, ulen)
	}
	m.off, m.clen, m.ulen = off, uint32(clen), uint32(ulen)
	m.enc, m.count = uint8(enc), uint32(count)
	for _, dst := range []*float64{&m.firstT, &m.lastT, &m.lastV, &m.prefFirst, &m.prefLast, &m.min, &m.max} {
		if *dst, err = r.f64(); err != nil {
			return err
		}
	}
	if m.count > 1 && m.lastT < m.firstT {
		return fmt.Errorf("store: chunk times inverted (%g > %g)", m.firstT, m.lastT)
	}
	return nil
}
