package store

import (
	"bufio"
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"

	"viva/internal/ingest"
	"viva/internal/obs"
	"viva/internal/paje"
	"viva/internal/trace"
)

// Compaction observability: the span times whole compactions; the
// counters let MB/s be derived from any sink that samples /metrics.
var (
	obsCompactChunks = obs.Default.Counter("viva_store_compact_chunks_total",
		"Chunks flushed by columnar store writers.")
	obsCompactBytes = obs.Default.Counter("viva_store_compact_bytes_total",
		"Chunk bytes (after compression) written by columnar store writers.")
	obsCompactEvents = obs.Default.Counter("viva_store_compact_events_total",
		"Metric points streamed into columnar store writers.")
)

// ErrOutOfOrder reports a metric event earlier than its column's last
// point. The streaming writer computes prefix sums left to right and
// flushes closed chunks, so it cannot insert into the past; callers fall
// back to materializing the trace in heap (WriteTrace), which CompactFile
// does automatically.
var ErrOutOfOrder = errors.New("store: out-of-order event")

// WriterOptions tune the streaming writer.
type WriterOptions struct {
	// ChunkPoints is the number of points per chunk (DefaultChunkPoints
	// when 0). Smaller chunks mean finer-grained reads and a bigger
	// directory; larger chunks compress better but cost more per
	// boundary-chunk decode.
	ChunkPoints int
}

type colKey struct{ resource, metric string }

// colState buffers one column's open chunk plus the running point the
// prefix recurrence needs. The buffer is flushed only when a strictly
// later point arrives on a full buffer, so an equal-time overwrite of
// the last point — the trace model allows it — always lands in the
// buffer, never in a closed chunk.
type colState struct {
	resource, metric string
	times            []float64
	values           []float64
	prefix           []float64
	prevT, prevV     float64 // last appended point
	pref             float64 // prefix value of the last appended point
	started          bool
	chunks           []chunkMeta
}

// Writer streams a trace into the columnar format. Memory stays
// O(columns × ChunkPoints) plus the catalog — never the full trace.
// Events must be time-ordered per column (ErrOutOfOrder otherwise); the
// catalog, states and directory live in the footer written by Close.
type Writer struct {
	w    *bufio.Writer
	off  uint64
	opts WriterOptions

	cat      *trace.Trace // resources, edges, states, end
	declared map[string]bool
	cols     map[colKey]*colState
	colOrder []*colState
	end      float64

	payload []byte // reused chunk encode buffer
	cbuf    bytes.Buffer
	flt     *flate.Writer

	closed bool
}

// NewWriter starts a columnar file on w (the magic is written
// immediately). Close finishes it; nothing is seekable, so the writer
// never revisits written bytes.
func NewWriter(w io.Writer, opts WriterOptions) (*Writer, error) {
	if opts.ChunkPoints <= 0 {
		opts.ChunkPoints = DefaultChunkPoints
	}
	bw := bufio.NewWriterSize(w, 256<<10)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	flt, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	return &Writer{
		w:        bw,
		off:      uint64(len(Magic)),
		opts:     opts,
		cat:      trace.New(),
		declared: make(map[string]bool),
		cols:     make(map[colKey]*colState),
		flt:      flt,
	}, nil
}

// DeclareResource mirrors trace.Trace.DeclareResource.
func (w *Writer) DeclareResource(name, typ, parent string) error {
	if err := w.cat.DeclareResource(name, typ, parent); err != nil {
		return err
	}
	w.declared[name] = true
	return nil
}

// DeclareEdge mirrors trace.Trace.DeclareEdge.
func (w *Writer) DeclareEdge(a, b string) error { return w.cat.DeclareEdge(a, b) }

// SetState mirrors trace.Trace.SetState; states are footer-resident.
func (w *Writer) SetState(t float64, resource, value string) error {
	return w.cat.SetState(t, resource, value)
}

// SetEnd extends the observation window to at least t.
func (w *Writer) SetEnd(t float64) {
	if t > w.end {
		w.end = t
	}
}

func (w *Writer) col(resource, metric string) (*colState, error) {
	if !w.declared[resource] {
		return nil, fmt.Errorf("store: event on undeclared resource %q", resource)
	}
	if metric == "" {
		return nil, fmt.Errorf("store: empty metric name on resource %q", resource)
	}
	k := colKey{resource, metric}
	c, ok := w.cols[k]
	if !ok {
		c = &colState{resource: resource, metric: metric}
		w.cols[k] = c
		w.colOrder = append(w.colOrder, c)
	}
	return c, nil
}

// Set records metric = v on the resource from time t on. Events must be
// time-ordered within each column: a t earlier than the column's last
// point returns ErrOutOfOrder (equal t overwrites the last value, like
// the in-heap trace).
func (w *Writer) Set(t float64, resource, metric string, v float64) error {
	c, err := w.col(resource, metric)
	if err != nil {
		return err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("store: non-finite value for %s/%s at t=%g", resource, metric, t)
	}
	obsCompactEvents.Inc()
	switch {
	case !c.started:
		c.append(t, v, 0)
		c.started = true
	case t > c.prevT:
		if len(c.times) >= w.opts.ChunkPoints {
			if err := w.flush(c); err != nil {
				return err
			}
		}
		// The same left-to-right recurrence the in-heap timeline index
		// runs, so prefix values — and every Integrate derived from them —
		// are bit-identical between store and heap.
		c.append(t, v, c.pref+c.prevV*(t-c.prevT))
	case t == c.prevT:
		// Overwrite of the last point; its prefix integrates only up to
		// t, which did not move, so the buffered prefix stays valid.
		c.values[len(c.values)-1] = v
		c.prevV = v
	default:
		return fmt.Errorf("%w: %s/%s at t=%g after t=%g", ErrOutOfOrder, resource, metric, t, c.prevT)
	}
	if t > w.end {
		w.end = t
	}
	return nil
}

// Add records metric += dv from time t on (the counter idiom of flow
// starts and ends).
func (w *Writer) Add(t float64, resource, metric string, dv float64) error {
	c, err := w.col(resource, metric)
	if err != nil {
		return err
	}
	cur := 0.0
	if c.started {
		if t < c.prevT {
			return fmt.Errorf("%w: %s/%s at t=%g after t=%g", ErrOutOfOrder, resource, metric, t, c.prevT)
		}
		cur = c.prevV
	}
	return w.Set(t, resource, metric, cur+dv)
}

func (c *colState) append(t, v, pref float64) {
	c.times = append(c.times, t)
	c.values = append(c.values, v)
	c.prefix = append(c.prefix, pref)
	c.prevT, c.prevV, c.pref = t, v, pref
}

// flush closes the column's buffered chunk: encode, compress if that
// helps, write, record directory metadata.
func (w *Writer) flush(c *colState) error {
	n := len(c.times)
	if n == 0 {
		return nil
	}
	w.payload = encodeChunkPayload(w.payload, c.times, c.values, c.prefix)

	enc := uint8(encRaw)
	out := w.payload
	w.cbuf.Reset()
	w.flt.Reset(&w.cbuf)
	if _, err := w.flt.Write(w.payload); err != nil {
		return err
	}
	if err := w.flt.Close(); err != nil {
		return err
	}
	if w.cbuf.Len() < len(w.payload) {
		enc = encFlate
		out = w.cbuf.Bytes()
	}

	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range c.values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	c.chunks = append(c.chunks, chunkMeta{
		off:       w.off,
		clen:      uint32(len(out)),
		ulen:      uint32(24 * n),
		enc:       enc,
		count:     uint32(n),
		firstT:    c.times[0],
		lastT:     c.times[n-1],
		lastV:     c.values[n-1],
		prefFirst: c.prefix[0],
		prefLast:  c.prefix[n-1],
		min:       min,
		max:       max,
	})
	if _, err := w.w.Write(out); err != nil {
		return err
	}
	w.off += uint64(len(out))
	obsCompactChunks.Inc()
	obsCompactBytes.Add(uint64(len(out)))
	c.times, c.values, c.prefix = c.times[:0], c.values[:0], c.prefix[:0]
	return nil
}

// Close flushes every open chunk, writes the footer and trailer, and
// finishes the file. The destination is not closed (the Writer does not
// own it).
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("store: writer already closed")
	}
	w.closed = true
	for _, c := range w.colOrder {
		if err := w.flush(c); err != nil {
			return err
		}
	}

	w.cat.SetEnd(w.end)
	resources := w.cat.Resources()
	resIdx := make(map[string]uint64, len(resources))
	for i, r := range resources {
		resIdx[r.Name] = uint64(i)
	}

	e := &footerEncoder{}
	e.uvarint(uint64(len(resources)))
	for _, r := range resources {
		e.str(r.Name)
		e.str(r.Type)
		e.str(r.Parent)
	}
	edges := w.cat.Edges()
	e.uvarint(uint64(len(edges)))
	for _, ed := range edges {
		e.uvarint(resIdx[ed.A])
		e.uvarint(resIdx[ed.B])
	}
	stateful := w.cat.StatefulResources()
	e.uvarint(uint64(len(stateful)))
	for _, name := range stateful {
		pts := w.cat.StatePoints(name)
		e.uvarint(resIdx[name])
		e.uvarint(uint64(len(pts)))
		for _, p := range pts {
			e.f64(p.T)
			e.str(p.Value)
		}
	}
	_, end := w.cat.Window()
	e.f64(end)
	e.uvarint(uint64(len(w.colOrder)))
	for _, c := range w.colOrder {
		e.uvarint(resIdx[c.resource])
		e.str(c.metric)
		e.uvarint(uint64(len(c.chunks)))
		for i := range c.chunks {
			m := &c.chunks[i]
			e.uvarint(m.off)
			e.uvarint(uint64(m.clen))
			e.uvarint(uint64(m.ulen))
			e.uvarint(uint64(m.enc))
			e.uvarint(uint64(m.count))
			for _, v := range []float64{m.firstT, m.lastT, m.lastV, m.prefFirst, m.prefLast, m.min, m.max} {
				e.f64(v)
			}
		}
	}

	if _, err := w.w.Write(e.buf); err != nil {
		return err
	}
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[0:], uint64(len(e.buf)))
	binary.LittleEndian.PutUint32(trailer[8:], crc32.ChecksumIEEE(e.buf))
	copy(trailer[12:], Magic)
	if _, err := w.w.Write(trailer[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// WriteTrace serialises a fully materialized in-heap trace. Per-column
// points are already time-ordered, so this never hits ErrOutOfOrder.
func WriteTrace(out io.Writer, tr *trace.Trace, opts WriterOptions) error {
	w, err := NewWriter(out, opts)
	if err != nil {
		return err
	}
	for _, r := range tr.Resources() {
		if err := w.DeclareResource(r.Name, r.Type, r.Parent); err != nil {
			return err
		}
	}
	for _, e := range tr.Edges() {
		if err := w.DeclareEdge(e.A, e.B); err != nil {
			return err
		}
	}
	for _, r := range tr.Resources() {
		for _, metric := range tr.MetricsOf(r.Name) {
			for _, p := range tr.Timeline(r.Name, metric).Points() {
				if err := w.Set(p.T, r.Name, metric, p.V); err != nil {
					return err
				}
			}
		}
		for _, sp := range tr.StatePoints(r.Name) {
			if err := w.SetState(sp.T, r.Name, sp.Value); err != nil {
				return err
			}
		}
	}
	_, end := tr.Window()
	w.SetEnd(end)
	return w.Close()
}

// CompactFile converts a trace file (native or Paje, optionally
// gzipped) into a columnar .vvc file. Native traces stream straight
// from the ingest scanner into the writer — peak memory is
// O(columns × ChunkPoints), never the trace — with one automatic
// fallback: events that go back in time within a column (legal in the
// heap model, rare in practice) force a second pass that materializes
// the trace first. Paje traces always take the materializing path (the
// Paje applier needs random access to its container state). The whole
// conversion runs under an obs StageCompact span.
func CompactFile(src, dst string, iopt ingest.Options, wopt WriterOptions) error {
	sp := obs.StartSpan(obs.StageCompact)
	defer sp.End()

	err := compactStreaming(src, dst, iopt, wopt)
	if errors.Is(err, ErrOutOfOrder) || errors.Is(err, errNeedsHeap) {
		err = compactMaterialized(src, dst, iopt, wopt)
	}
	return err
}

// errNeedsHeap marks inputs the streaming path cannot handle (Paje,
// already-columnar input).
var errNeedsHeap = errors.New("store: input needs materializing")

func compactStreaming(src, dst string, iopt ingest.Options, wopt WriterOptions) (err error) {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	br := bufio.NewReaderSize(in, 256<<10)
	if head, herr := br.Peek(2); herr == nil && ingest.IsGzip(head) {
		gz, gerr := gzip.NewReader(br)
		if gerr != nil {
			return gerr
		}
		defer gz.Close()
		br = bufio.NewReaderSize(gz, 256<<10)
	}
	head, herr := br.Peek(4096)
	if herr != nil && herr != io.EOF {
		return herr
	}
	if ingest.IsPaje(head) || IsColumnar(head) {
		return errNeedsHeap
	}

	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := out.Close(); err == nil {
			err = cerr
		}
	}()
	w, err := NewWriter(out, wopt)
	if err != nil {
		return err
	}
	a := &streamApplier{w: w, in: ingest.NewInterner()}
	if err := ingest.Scan(br, ingest.DialectNative, iopt, a.line); err != nil {
		return err
	}
	ingest.Events.Add(uint64(a.events))
	return w.Close()
}

func compactMaterialized(src, dst string, iopt ingest.Options, wopt WriterOptions) (err error) {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	br := bufio.NewReaderSize(in, 256<<10)
	if head, herr := br.Peek(2); herr == nil && ingest.IsGzip(head) {
		gz, gerr := gzip.NewReader(br)
		if gerr != nil {
			return gerr
		}
		defer gz.Close()
		br = bufio.NewReaderSize(gz, 256<<10)
	}
	head, herr := br.Peek(4096)
	if herr != nil && herr != io.EOF {
		return herr
	}
	var tr *trace.Trace
	switch {
	case IsColumnar(head):
		st, serr := Open(src)
		if serr != nil {
			return serr
		}
		defer st.Close()
		tr, err = st.ReadAll()
	case ingest.IsPaje(head):
		tr, err = paje.ReadWith(br, iopt)
	default:
		tr, err = trace.ReadWith(br, iopt)
	}
	if err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := out.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteTrace(out, tr, wopt)
}

// streamApplier is the sequential apply stage of streaming compaction:
// the same directive grammar as the native trace reader, dispatched into
// the columnar writer instead of an in-heap trace.
type streamApplier struct {
	w      *Writer
	in     *ingest.Interner
	events int
}

func (a *streamApplier) line(lineno int, kind ingest.LineKind, fields [][]byte) error {
	if kind != ingest.LineEvent {
		return nil
	}
	a.events++
	w := a.w
	switch string(fields[0]) {
	case "resource":
		if len(fields) != 4 {
			return fmt.Errorf("store: line %d: resource wants 3 args", lineno)
		}
		parent := ""
		if string(fields[3]) != "-" {
			parent = a.in.Intern(fields[3])
		}
		if err := w.DeclareResource(a.in.Intern(fields[1]), a.in.Intern(fields[2]), parent); err != nil {
			return fmt.Errorf("store: line %d: %v", lineno, err)
		}
	case "edge":
		if len(fields) != 3 {
			return fmt.Errorf("store: line %d: edge wants 2 args", lineno)
		}
		if err := w.DeclareEdge(a.in.Intern(fields[1]), a.in.Intern(fields[2])); err != nil {
			return fmt.Errorf("store: line %d: %v", lineno, err)
		}
	case "set", "add":
		if len(fields) != 5 {
			return fmt.Errorf("store: line %d: %s wants 4 args", lineno, fields[0])
		}
		t, err := strconv.ParseFloat(string(fields[1]), 64)
		if err != nil {
			return fmt.Errorf("store: line %d: bad time %q", lineno, fields[1])
		}
		v, err := strconv.ParseFloat(string(fields[4]), 64)
		if err != nil {
			return fmt.Errorf("store: line %d: bad value %q", lineno, fields[4])
		}
		resource := a.in.Intern(fields[2])
		metric := a.in.Intern(fields[3])
		if fields[0][0] == 's' {
			err = w.Set(t, resource, metric, v)
		} else {
			err = w.Add(t, resource, metric, v)
		}
		if err != nil {
			if errors.Is(err, ErrOutOfOrder) {
				return err // triggers the materializing fallback
			}
			return fmt.Errorf("store: line %d: %v", lineno, err)
		}
	case "state":
		if len(fields) != 4 {
			return fmt.Errorf("store: line %d: state wants 3 args", lineno)
		}
		t, err := strconv.ParseFloat(string(fields[1]), 64)
		if err != nil {
			return fmt.Errorf("store: line %d: bad time %q", lineno, fields[1])
		}
		v := ""
		if string(fields[3]) != "-" {
			v = a.in.Intern(fields[3])
		}
		if err := w.SetState(t, a.in.Intern(fields[2]), v); err != nil {
			return fmt.Errorf("store: line %d: %v", lineno, err)
		}
	case "end":
		if len(fields) != 2 {
			return fmt.Errorf("store: line %d: end wants 1 arg", lineno)
		}
		t, err := strconv.ParseFloat(string(fields[1]), 64)
		if err != nil {
			return fmt.Errorf("store: line %d: bad time %q", lineno, fields[1])
		}
		w.SetEnd(t)
	default:
		return fmt.Errorf("store: line %d: unknown directive %q", lineno, fields[0])
	}
	return nil
}
