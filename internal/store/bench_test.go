package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"viva/internal/ingest"
	"viva/internal/trace"
)

// The query benchmarks run against a store whose raw column data is
// ~60x the cold cache budget (16 hosts x 20k points x 24 bytes/point
// = 7.7 MB vs 128 KiB), so the resident-heap gauge demonstrates the
// out-of-core property: heap stays O(cache), not O(trace).
const (
	benchHosts      = 16
	benchPoints     = 20000
	benchCacheBytes = 128 << 10
)

func benchHostName(h int) string { return fmt.Sprintf("h%d", h) }

// benchStoreFile writes the benchmark store and returns its path plus
// the raw (decoded) size of its column data in bytes.
func benchStoreFile(b *testing.B) (string, int64) {
	b.Helper()
	tr := trace.New()
	tr.MustDeclareResource("g", trace.TypeGroup, "")
	for h := 0; h < benchHosts; h++ {
		tr.MustDeclareResource(benchHostName(h), trace.TypeHost, "g")
	}
	now := 0.0
	for i := 0; i < benchPoints; i++ {
		now += 0.001
		for h := 0; h < benchHosts; h++ {
			if err := tr.Set(now, benchHostName(h), trace.MetricUsage, float64((i*7+h)%100)); err != nil {
				b.Fatal(err)
			}
		}
	}
	tr.SetEnd(now + 1)

	path := filepath.Join(b.TempDir(), "bench.vvc")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteTrace(f, tr, WriterOptions{}); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path, int64(benchHosts * benchPoints * 24)
}

// BenchmarkStoreCompact measures `viva compact` throughput (MB/s) on the
// same 512-host/100k-event synthetic native trace the ingest suite uses.
func BenchmarkStoreCompact(b *testing.B) {
	var src strings.Builder
	src.WriteString("# viva trace v1\nresource g0 group -\n")
	for h := 0; h < 512; h++ {
		fmt.Fprintf(&src, "resource h%d host g0\n", h)
		fmt.Fprintf(&src, "set 0 h%d power 100\n", h)
	}
	now := 0.0
	for e := 0; e < 100000; e++ {
		now += 0.001
		if e%2 == 0 {
			fmt.Fprintf(&src, "set %g h%d usage %d\n", now, e%512, 25+(e%3)*25)
		} else {
			fmt.Fprintf(&src, "add %g h%d usage 5\n", now, e%512)
		}
	}
	fmt.Fprintf(&src, "end %g\n", now+1)

	dir := b.TempDir()
	in := filepath.Join(dir, "in.trace")
	if err := os.WriteFile(in, []byte(src.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	out := filepath.Join(dir, "out.vvc")
	b.SetBytes(int64(src.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CompactFile(in, out, ingest.Options{}, WriterOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreQueryCold scrubs windows across the whole trace with a
// cache ~60x smaller than the column data, so nearly every boundary
// chunk is a miss: the worst-case read+inflate+decode path. The
// heap-bytes metric is live heap after the run (post-GC) minus live
// heap before Open: catalog + chunk cache, bounded by the budget.
func BenchmarkStoreQueryCold(b *testing.B) {
	path, dataBytes := benchStoreFile(b)
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	st, err := OpenWith(path, OpenOptions{CacheBytes: benchCacheBytes})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	_, end := st.Window()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := float64(i%97) / 97 * end * 0.9
		w := a + end/64
		for h := 0; h < benchHosts; h++ {
			s := st.Series(benchHostName(h), trace.MetricUsage)
			_ = s.Integrate(a, w)
			_ = s.Max(a, w)
		}
	}
	b.StopTimer()
	if err := st.Err(); err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc {
		b.ReportMetric(float64(m1.HeapAlloc-m0.HeapAlloc), "heap-bytes")
	}
	b.ReportMetric(float64(dataBytes)/benchCacheBytes, "data/cache")
}

// BenchmarkStoreQueryWarm repeats one window with a cache big enough to
// hold its boundary chunks: steady-state scrubbing, no reads.
func BenchmarkStoreQueryWarm(b *testing.B) {
	path, _ := benchStoreFile(b)
	st, err := OpenWith(path, OpenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	_, end := st.Window()
	a, w := end/3, end/3+end/64
	for h := 0; h < benchHosts; h++ { // prime the cache
		s := st.Series(benchHostName(h), trace.MetricUsage)
		_ = s.Integrate(a, w)
		_ = s.Max(a, w)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for h := 0; h < benchHosts; h++ {
			s := st.Series(benchHostName(h), trace.MetricUsage)
			_ = s.Integrate(a, w)
			_ = s.Max(a, w)
		}
	}
	b.StopTimer()
	if err := st.Err(); err != nil {
		b.Fatal(err)
	}
}
