package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"viva/internal/trace"
)

// FuzzOpen feeds arbitrary bytes through the whole read path: Open must
// either succeed or return an error — never panic — and a successfully
// opened file must survive queries and full materialization. Seeds
// include a valid file and targeted corruptions of it (truncations,
// flipped lengths, bad magic).
func FuzzOpen(f *testing.F) {
	tr := trace.New()
	tr.MustDeclareResource("g", trace.TypeGroup, "")
	tr.MustDeclareResource("h", trace.TypeHost, "g")
	tr.MustDeclareResource("l", trace.TypeLink, "g")
	tr.MustDeclareEdge("h", "l")
	rng := rand.New(rand.NewSource(1))
	now := 0.0
	for i := 0; i < 200; i++ {
		now += rng.Float64()
		if err := tr.Set(now, "h", trace.MetricUsage, rng.NormFloat64()); err != nil {
			f.Fatal(err)
		}
	}
	if err := tr.SetState(1, "h", "compute"); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, WriterOptions{ChunkPoints: 16}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-trailerSize+3])
	f.Add([]byte(Magic))
	f.Add([]byte("VVC1xxxxxxxxxxxxxxxxxxxxxxxxxxxxVVC1"))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-trailerSize] ^= 0x40 // footer length
	f.Add(corrupt)
	corrupt = append([]byte(nil), valid...)
	corrupt[len(Magic)+2] ^= 0xff // chunk blob byte
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.vvc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := Open(path)
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		defer st.Close()
		// A file that opened must answer queries without panicking, even
		// if its blobs are garbage (queries degrade to 0 + Store.Err).
		for _, r := range st.Resources() {
			for _, m := range st.MetricsOf(r.Name) {
				se := st.Series(r.Name, m)
				se.At(1)
				se.Integrate(0, 2)
				se.Mean(0, 2)
				se.Max(0, 2)
				se.Min(0, 2)
				se.Len()
			}
		}
		_, _ = st.ReadAll()
	})
}
