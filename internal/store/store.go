package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"viva/internal/obs"
	"viva/internal/trace"
)

// obsReadErrors counts chunk reads that failed after a successful Open —
// I/O faults or blob corruption the footer CRC cannot see. Queries
// degrade to 0 (the Series interface has no error channel); Store.Err
// holds the first failure.
var obsReadErrors = obs.Default.Counter("viva_store_read_errors_total",
	"Chunk reads that failed after Open (I/O fault or blob corruption).")

// Store is an open columnar trace file: the footer catalog resident in
// heap, every chunk on disk behind one bounded LRU cache. It satisfies
// aggregation.Source, so views and servers work off it exactly as off an
// in-heap trace, with resident memory O(cache), not O(trace).
//
// A Store is safe for concurrent readers. Close invalidates every
// ColumnSeries obtained from it.
type Store struct {
	f     *os.File
	cat   *trace.Trace // resources, edges, states, end — no timelines
	foot  *footer
	cache *chunkCache
	start float64

	colIdx  map[colKey]int
	metrics []string

	errMu sync.Mutex
	err   error // first chunk-read error, sticky
}

// OpenOptions tune the read side.
type OpenOptions struct {
	// CacheBytes bounds the decoded chunks kept resident
	// (DefaultCacheBytes when 0).
	CacheBytes int64
}

// Open opens a .vvc file with default options.
func Open(path string) (*Store, error) { return OpenWith(path, OpenOptions{}) }

// OpenWith opens a .vvc file. The footer is read and validated (magic,
// CRC, directory bounds, hierarchy) before returning; chunk blobs are
// only touched by queries.
func OpenWith(path string, opts OpenOptions) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := open(f, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

func open(f *os.File, opts OpenOptions) (*Store, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < int64(len(Magic))+trailerSize {
		return nil, fmt.Errorf("store: file too short (%d bytes)", size)
	}
	var head [4]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if !IsColumnar(head[:]) {
		return nil, fmt.Errorf("store: bad magic %q", head)
	}
	var trailer [trailerSize]byte
	if _, err := f.ReadAt(trailer[:], size-trailerSize); err != nil {
		return nil, err
	}
	if string(trailer[12:16]) != Magic {
		return nil, fmt.Errorf("store: bad trailer magic")
	}
	footLen := binary.LittleEndian.Uint64(trailer[0:])
	wantCRC := binary.LittleEndian.Uint32(trailer[8:])
	maxFoot := uint64(size) - uint64(len(Magic)) - trailerSize
	if footLen > maxFoot {
		return nil, fmt.Errorf("store: footer length %d exceeds file", footLen)
	}
	footOff := uint64(size) - trailerSize - footLen
	footBytes := make([]byte, footLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, int64(footOff), int64(footLen)), footBytes); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(footBytes); got != wantCRC {
		return nil, fmt.Errorf("store: footer CRC mismatch (%08x != %08x)", got, wantCRC)
	}
	foot, err := decodeFooter(footBytes, footOff)
	if err != nil {
		return nil, err
	}

	// Rebuild the catalog as a timeline-less trace: declaration order is
	// footer order, so parent-before-child and every other hierarchy
	// invariant is re-checked by the same code that enforces it in heap.
	cat := trace.New()
	for _, r := range foot.resources {
		if err := cat.DeclareResource(r.name, r.typ, r.parent); err != nil {
			return nil, err
		}
	}
	for _, e := range foot.edges {
		if err := cat.DeclareEdge(foot.resources[e[0]].name, foot.resources[e[1]].name); err != nil {
			return nil, err
		}
	}
	for idx, pts := range foot.states {
		name := foot.resources[idx].name
		for _, p := range pts {
			if err := cat.SetState(p.t, name, p.value); err != nil {
				return nil, err
			}
		}
	}
	cat.SetEnd(foot.end)

	st := &Store{
		f:      f,
		cat:    cat,
		foot:   foot,
		cache:  newChunkCache(f, opts.CacheBytes),
		colIdx: make(map[colKey]int, len(foot.cols)),
	}
	first := true
	seenMetric := make(map[string]bool)
	for i := range foot.cols {
		c := &foot.cols[i]
		key := colKey{c.resource, c.metric}
		if _, dup := st.colIdx[key]; dup {
			return nil, fmt.Errorf("store: duplicate column %s/%s", c.resource, c.metric)
		}
		if cat.Resource(c.resource) == nil {
			return nil, fmt.Errorf("store: column on unknown resource %q", c.resource)
		}
		st.colIdx[key] = i
		if !seenMetric[c.metric] {
			seenMetric[c.metric] = true
			st.metrics = append(st.metrics, c.metric)
		}
		if len(c.chunks) > 0 && (first || c.chunks[0].firstT < st.start) {
			st.start = c.chunks[0].firstT
			first = false
		}
	}
	sort.Strings(st.metrics)
	return st, nil
}

// Close releases the file. Series obtained from the store must not be
// used afterwards.
func (s *Store) Close() error { return s.f.Close() }

// CacheStats reports this store's chunk-cache traffic: lookups served
// from memory, lookups that read the file, and the decoded bytes
// currently resident (always <= the configured budget).
func (s *Store) CacheStats() (hits, misses, resident int64) {
	c := s.cache
	c.mu.Lock()
	resident = c.size
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), resident
}

// Err returns the first chunk-read failure any query hit, or nil. Open
// validates the footer, but blob corruption or I/O faults only surface
// when a query touches the bad chunk; affected queries return 0.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *Store) fail(err error) {
	obsReadErrors.Inc()
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// --- aggregation.Source ---

// Validate checks the catalog's structural invariants.
func (s *Store) Validate() error { return s.cat.Validate() }

// Resources returns the catalog in declaration order (fresh copies).
func (s *Store) Resources() []*trace.Resource { return s.cat.Resources() }

// ResourcesOfType returns the resources of one type, in declaration
// order.
func (s *Store) ResourcesOfType(typ string) []*trace.Resource { return s.cat.ResourcesOfType(typ) }

// Resource returns a copy of the named resource, or nil.
func (s *Store) Resource(name string) *trace.Resource { return s.cat.Resource(name) }

// Edges returns the topology edges in declaration order.
func (s *Store) Edges() []trace.Edge { return s.cat.Edges() }

// Roots returns the names of parentless resources in declaration order.
func (s *Store) Roots() []string { return s.cat.Roots() }

// Children returns the names of the resources whose parent is name.
func (s *Store) Children(name string) []string { return s.cat.Children(name) }

// HasMetric reports whether the (resource, metric) column exists.
func (s *Store) HasMetric(resource, metric string) bool {
	_, ok := s.colIdx[colKey{resource, metric}]
	return ok
}

// Metrics returns the sorted metric names present in the store.
func (s *Store) Metrics() []string {
	out := make([]string, len(s.metrics))
	copy(out, s.metrics)
	return out
}

// MetricsOf returns the sorted metric names of one resource.
func (s *Store) MetricsOf(resource string) []string {
	var out []string
	for i := range s.foot.cols {
		if s.foot.cols[i].resource == resource {
			out = append(out, s.foot.cols[i].metric)
		}
	}
	sort.Strings(out)
	return out
}

// Window returns the observation window [start, end]: the earliest
// point of any column and the recorded end.
func (s *Store) Window() (start, end float64) { return s.start, s.foot.end }

// Series returns the (resource, metric) column as a Series; missing
// pairs yield an identically-zero series.
func (s *Store) Series(resource, metric string) trace.Series {
	i, ok := s.colIdx[colKey{resource, metric}]
	if !ok {
		return &trace.Timeline{}
	}
	return &ColumnSeries{s: s, col: i, c: &s.foot.cols[i]}
}

// --- state accessors (footer-resident) ---

// StateAt returns the state of the resource at time t.
func (s *Store) StateAt(resource string, t float64) string { return s.cat.StateAt(resource, t) }

// HasStates reports whether the resource carries state events.
func (s *Store) HasStates(resource string) bool { return s.cat.HasStates(resource) }

// StateIntervals returns the resource's state spans clipped to [a, b].
func (s *Store) StateIntervals(resource string, a, b float64) []trace.StateInterval {
	return s.cat.StateIntervals(resource, a, b)
}

// StatefulResources returns the names of resources carrying states.
func (s *Store) StatefulResources() []string { return s.cat.StatefulResources() }

// ReadAll materializes the whole store as an in-heap trace — the
// transparent-load path of traceio, and the bridge back for tools that
// need mutation. It decompresses every chunk exactly once, bypassing
// the cache.
func (s *Store) ReadAll() (*trace.Trace, error) {
	tr := trace.New()
	for _, r := range s.cat.Resources() {
		if err := tr.DeclareResource(r.Name, r.Type, r.Parent); err != nil {
			return nil, err
		}
	}
	for _, e := range s.cat.Edges() {
		if err := tr.DeclareEdge(e.A, e.B); err != nil {
			return nil, err
		}
	}
	for i := range s.foot.cols {
		c := &s.foot.cols[i]
		for k := range c.chunks {
			data, err := readChunk(s.f, &c.chunks[k])
			if err != nil {
				return nil, err
			}
			for j, t := range data.times {
				if err := tr.Set(t, c.resource, c.metric, data.values[j]); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, name := range s.cat.StatefulResources() {
		for _, p := range s.cat.StatePoints(name) {
			if err := tr.SetState(p.T, name, p.Value); err != nil {
				return nil, err
			}
		}
	}
	_, end := s.cat.Window()
	tr.SetEnd(end)
	return tr, nil
}

// ColumnSeries answers the Series queries for one on-disk column. A
// window resolves through the chunk directory: interior chunks answer
// from their precomputed prefix sums and min/max without being read;
// only the (at most two) boundary chunks are fetched, through the
// store's bounded cache. All methods are safe for concurrent use.
type ColumnSeries struct {
	s   *Store
	col int
	c   *column
}

var _ trace.Series = (*ColumnSeries)(nil)

// Len returns the column's total point count.
func (cs *ColumnSeries) Len() int { return cs.c.points }

// FirstTime returns the time of the first point (0 when empty).
func (cs *ColumnSeries) FirstTime() float64 {
	if len(cs.c.chunks) == 0 {
		return 0
	}
	return cs.c.chunks[0].firstT
}

// LastTime returns the time of the last point (0 when empty).
func (cs *ColumnSeries) LastTime() float64 {
	if n := len(cs.c.chunks); n > 0 {
		return cs.c.chunks[n-1].lastT
	}
	return 0
}

// locate returns the index of the last chunk whose firstT <= t, or -1
// when t precedes every point.
func (cs *ColumnSeries) locate(t float64) int {
	chunks := cs.c.chunks
	i := sort.Search(len(chunks), func(i int) bool { return chunks[i].firstT > t })
	return i - 1
}

// chunk fetches a decoded chunk through the cache; on failure it
// records the error on the store and returns nil (the query degrades
// to the implicit 0).
func (cs *ColumnSeries) chunk(k int) *chunkData {
	data, err := cs.s.cache.get(cs.col, k, &cs.c.chunks[k])
	if err != nil {
		cs.s.fail(err)
		return nil
	}
	return data
}

// At returns the value of the step function at time t.
func (cs *ColumnSeries) At(t float64) float64 {
	k := cs.locate(t)
	if k < 0 {
		return 0
	}
	m := &cs.c.chunks[k]
	if t >= m.lastT {
		return m.lastV // directory answer, no chunk read
	}
	data := cs.chunk(k)
	if data == nil {
		return 0
	}
	i := sort.SearchFloat64s(data.times, t)
	// SearchFloat64s finds the first index with times[i] >= t; the point
	// in effect is the last one with times[j] <= t.
	if i == len(data.times) || data.times[i] > t {
		i--
	}
	if i < 0 {
		return 0
	}
	return data.values[i]
}

// integrateTo returns the cumulative integral from −∞ to t, mirroring
// the in-heap index arithmetic exactly: prefix[j] + values[j]*(t −
// times[j]) with the same absolute prefix values — so Integrate is
// bit-identical between heap and store.
func (cs *ColumnSeries) integrateTo(t float64) float64 {
	k := cs.locate(t)
	if k < 0 {
		return 0
	}
	m := &cs.c.chunks[k]
	if t >= m.lastT {
		return m.prefLast + m.lastV*(t-m.lastT) // directory answer
	}
	data := cs.chunk(k)
	if data == nil {
		return 0
	}
	i := sort.SearchFloat64s(data.times, t)
	if i == len(data.times) || data.times[i] > t {
		i--
	}
	if i < 0 {
		return 0
	}
	return data.prefix[i] + data.values[i]*(t-data.times[i])
}

// Integrate returns the exact integral over [a, b] (0 when b <= a).
func (cs *ColumnSeries) Integrate(a, b float64) float64 {
	if b <= a || cs.c.points == 0 {
		return 0
	}
	return cs.integrateTo(b) - cs.integrateTo(a)
}

// Mean returns the time average over [a, b], with the Timeline's window
// semantics.
func (cs *ColumnSeries) Mean(a, b float64) float64 {
	if b < a {
		return 0
	}
	if b == a {
		return cs.At(a)
	}
	return cs.Integrate(a, b) / (b - a)
}

// Max returns the maximum value taken anywhere in [a, b]: At(a) plus
// every point with a < T <= b. Chunks entirely inside the window answer
// from their directory extrema.
func (cs *ColumnSeries) Max(a, b float64) float64 {
	if b < a {
		return 0
	}
	v := cs.At(a)
	cs.extrema(a, b, func(lo, hi float64) {
		if hi > v {
			v = hi
		}
	})
	return v
}

// Min returns the minimum value taken anywhere in [a, b], with the same
// window semantics as Max.
func (cs *ColumnSeries) Min(a, b float64) float64 {
	if b < a {
		return 0
	}
	v := cs.At(a)
	cs.extrema(a, b, func(lo, hi float64) {
		if lo < v {
			v = lo
		}
	})
	return v
}

// extrema visits the (min, max) of every run of points with a < T <= b:
// whole-chunk directory entries for interior chunks, decoded scans for
// the at most two boundary chunks.
func (cs *ColumnSeries) extrema(a, b float64, visit func(lo, hi float64)) {
	chunks := cs.c.chunks
	// First chunk that may contain a point with T > a: the one holding a,
	// or the first one after it.
	k := cs.locate(a)
	if k < 0 {
		k = 0
	}
	for ; k < len(chunks); k++ {
		m := &chunks[k]
		if m.firstT > b {
			return
		}
		if m.lastT <= a {
			continue
		}
		if m.firstT > a && m.lastT <= b {
			visit(m.min, m.max) // interior chunk: directory answer
			continue
		}
		data := cs.chunk(k)
		if data == nil {
			continue
		}
		lo := sort.SearchFloat64s(data.times, a)
		// lo is the first index with times >= a; we want strictly > a.
		for lo < len(data.times) && data.times[lo] <= a {
			lo++
		}
		for i := lo; i < len(data.times) && data.times[i] <= b; i++ {
			visit(data.values[i], data.values[i])
		}
	}
}
