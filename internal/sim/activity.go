package sim

import (
	"cmp"
	"slices"
)

type activityKind int

const (
	actExec activityKind = iota
	actComm
	actSleep
)

// resource is the engine-side view of a host or link: a capacity shared by
// the flows currently attached to it.
type resource struct {
	name  string
	order int32 // rank in the engine's name-sorted resource list
	// heapIdx-style scratch used by the recompute scan and the solver;
	// valid only inside the call that set it.
	scanned  uint64  // recompute scan stamp (== engine scanEpoch when visited)
	remCap   float64 // max-min solver: remaining capacity
	nUnfixed int     // max-min solver: flows not yet fixed

	capacity float64
	isHost   bool

	// flows holds the attached, live flows. It is kept id-ordered lazily:
	// appends of monotonically increasing ids preserve order for free,
	// swap-removes and out-of-order appends mark it unsorted, and the next
	// ordered traversal re-sorts in place. This replaces the old
	// map[*activity]struct{} plus a fresh sort per traversal, the single
	// largest allocation source of the engine.
	flows       []*activity
	flowsSorted bool

	inDirty bool // already queued on the engine's dirty list

	// Fault state. nominal is the healthy capacity (what SetHostPower
	// and recoveries restore), degrade the standing LinkDegrade factor;
	// capacity is the derived effective value — 0 while down.
	nominal float64
	degrade float64
	down    bool

	// Last traced totals, to avoid redundant trace points.
	lastUsage   float64
	lastByCat   map[string]float64
	traceUsage  bool
	usageMetric string
}

// addFlow attaches a flow. New activities get monotonically increasing
// ids, so the common case appends in order and keeps the slice sorted.
func (r *resource) addFlow(f *activity) {
	if n := len(r.flows); n > 0 && r.flows[n-1].id > f.id {
		r.flowsSorted = false
	}
	r.flows = append(r.flows, f)
}

// removeFlow detaches a flow: O(log n) locate while the slice is sorted
// (linear scan after a swap-remove unsorted it), then O(1) swap-remove.
func (r *resource) removeFlow(f *activity) {
	pos := -1
	if r.flowsSorted {
		if i, ok := slices.BinarySearchFunc(r.flows, f.id, func(a *activity, id int64) int {
			return cmp.Compare(a.id, id)
		}); ok {
			pos = i
		}
	}
	if pos < 0 || r.flows[pos] != f {
		pos = slices.Index(r.flows, f)
		if pos < 0 {
			return
		}
	}
	last := len(r.flows) - 1
	if pos != last {
		r.flows[pos] = r.flows[last]
		r.flowsSorted = false
	}
	r.flows[last] = nil
	r.flows = r.flows[:last]
	if last == 0 {
		r.flowsSorted = true
	}
}

// sortedFlows returns the attached flows in id order, re-sorting in place
// only when incremental maintenance left the slice unordered. The returned
// slice is r.flows itself: callers must not mutate the flow set while
// iterating (takeDown snapshots first).
func (r *resource) sortedFlows() []*activity {
	if !r.flowsSorted {
		slices.SortFunc(r.flows, func(a, b *activity) int { return cmp.Compare(a.id, b.id) })
		r.flowsSorted = true
	}
	return r.flows
}

// activity is one unit of simulated work: an execution, a communication
// flow, or a timer. Activities are pooled on the engine: completed ones
// are recycled, so steady-state execution allocates none.
type activity struct {
	id       int64
	kind     activityKind
	category string

	resources []*resource // host (exec) or route links (comm)
	attached  bool        // flows only count once attached (after latency)

	delay      float64 // pending latency/sleep duration, from lastUpdate
	remaining  float64 // flops or bytes left
	rate       float64 // currently assigned progress rate
	lastUpdate float64 // engine time of the last settle

	done    bool
	failure error // why the activity was interrupted (nil on success)
	waiters []*Actor

	payload    any // comm payload, delivered on completion
	srcHost    string
	dstHost    string
	totalBytes float64

	// comms are the (up to two) handles of a communication. On completion
	// the engine copies the final state into them and drops the links, so
	// the activity can be recycled while the handles stay valid.
	comms [2]*Comm

	scanned uint64 // recompute scan stamp
	fixed   bool   // max-min solver scratch
	heapIdx int32  // position in the engine's event queue, -1 when absent
}

func (a *activity) addWaiter(w *Actor) {
	a.waiters = append(a.waiters, w)
}

// settle advances remaining to engine time now under the current rate.
func (a *activity) settle(now float64) {
	if a.attached && !a.done {
		a.remaining -= a.rate * (now - a.lastUpdate)
		if a.remaining < 0 {
			a.remaining = 0
		}
	}
	a.lastUpdate = now
}

// eventTime returns the absolute time of the activity's next event under
// current rates: end of its delay phase, or completion of its work phase.
// It returns false when no event is pending (for example a zero-rate flow).
func (a *activity) eventTime() (float64, bool) {
	if a.done {
		return 0, false
	}
	if !a.attached {
		return a.lastUpdate + a.delay, true
	}
	if a.rate <= 0 {
		return 0, false
	}
	return a.lastUpdate + a.remaining/a.rate, true
}

// eventEntry is one element of the engine's indexed event queue.
type eventEntry struct {
	t   float64
	act *activity
}
