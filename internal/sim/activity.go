package sim

import "sort"

type activityKind int

const (
	actExec activityKind = iota
	actComm
	actSleep
)

// resource is the engine-side view of a host or link: a capacity shared by
// the flows currently attached to it.
type resource struct {
	name     string
	capacity float64
	isHost   bool
	flows    map[*activity]struct{}

	// Fault state. nominal is the healthy capacity (what SetHostPower
	// and recoveries restore), degrade the standing LinkDegrade factor;
	// capacity is the derived effective value — 0 while down.
	nominal float64
	degrade float64
	down    bool

	// Last traced totals, to avoid redundant trace points.
	lastUsage   float64
	lastByCat   map[string]float64
	traceUsage  bool
	usageMetric string
}

func (r *resource) sortedFlows() []*activity {
	out := make([]*activity, 0, len(r.flows))
	for f := range r.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// activity is one unit of simulated work: an execution, a communication
// flow, or a timer.
type activity struct {
	id       int64
	kind     activityKind
	label    string
	category string

	resources []*resource // host (exec) or route links (comm)
	attached  bool        // flows only count once attached (after latency)

	delay      float64 // pending latency/sleep duration, from lastUpdate
	remaining  float64 // flops or bytes left
	rate       float64 // currently assigned progress rate
	lastUpdate float64 // engine time of the last settle

	done    bool
	failure error // why the activity was interrupted (nil on success)
	waiters []*Actor

	payload    any // comm payload, delivered on completion
	srcHost    string
	dstHost    string
	totalBytes float64

	seq int64 // heap invalidation sequence
}

func (a *activity) addWaiter(w *Actor) {
	a.waiters = append(a.waiters, w)
}

// settle advances remaining to engine time now under the current rate.
func (a *activity) settle(now float64) {
	if a.attached && !a.done {
		a.remaining -= a.rate * (now - a.lastUpdate)
		if a.remaining < 0 {
			a.remaining = 0
		}
	}
	a.lastUpdate = now
}

// eventTime returns the absolute time of the activity's next event under
// current rates: end of its delay phase, or completion of its work phase.
// It returns false when no event is pending (for example a zero-rate flow).
func (a *activity) eventTime() (float64, bool) {
	if a.done {
		return 0, false
	}
	if !a.attached {
		return a.lastUpdate + a.delay, true
	}
	if a.rate <= 0 {
		return 0, false
	}
	return a.lastUpdate + a.remaining/a.rate, true
}

// eventEntry is a heap element. Stale entries (seq mismatch) are skipped on
// pop.
type eventEntry struct {
	t   float64
	seq int64
	act *activity
}

type eventHeap []eventEntry

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].act.id < h[j].act.id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(eventEntry)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
