package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"viva/internal/fault"
	"viva/internal/trace"
)

func TestInjectFaultsRejectsUnknownTargets(t *testing.T) {
	e := New(testPlatform(), nil)
	bad := fault.MustSchedule(fault.Event{Time: 1, Kind: fault.HostDown, Target: "ghost"})
	if err := e.InjectFaults(bad); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("InjectFaults = %v, want unknown-host error", err)
	}
	badLink := fault.MustSchedule(fault.Event{Time: 1, Kind: fault.LinkDown, Target: "c-1"})
	if err := e.InjectFaults(badLink); err == nil {
		t.Error("InjectFaults accepted a host name as a link target")
	}
}

func TestHostDownInterruptsExecute(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	mustInject(t, e, fault.MustSchedule(
		fault.Event{Time: 2, Kind: fault.HostDown, Target: "c-1"},
		fault.Event{Time: 5, Kind: fault.HostUp, Target: "c-1"},
	))
	var execErr error
	var failedAt, recoveredAt float64
	e.Spawn("w", "c-1", func(c *Ctx) {
		execErr = c.TryExecute(1000) // 10 s healthy; dies at t=2
		failedAt = c.Now()
		for !c.HostAvailable("c-1") {
			c.Sleep(1)
		}
		recoveredAt = c.Now()
		if err := c.TryExecute(100); err != nil { // 1 s on the healed host
			t.Errorf("retry after recovery failed: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var rf *ResourceFailure
	if !errors.As(execErr, &rf) || rf.Resource != "c-1" || rf.Time != 2 {
		t.Fatalf("TryExecute error = %v, want ResourceFailure on c-1 at t=2", execErr)
	}
	near(t, "failure observed", failedAt, 2)
	near(t, "recovery observed", recoveredAt, 5)
	near(t, "final time", e.Now(), 6)

	if got := tr.StateAt("c-1", 3); got != trace.StateHostDown {
		t.Errorf("state during outage = %q, want %q", got, trace.StateHostDown)
	}
	if got := tr.StateAt("c-1", 5.5); got != "" {
		t.Errorf("state after recovery = %q, want idle", got)
	}
	avail := tr.Timeline("c-1", trace.MetricAvailability)
	near(t, "availability before", avail.At(1), 1)
	near(t, "availability during", avail.At(3), 0)
	near(t, "availability after", avail.At(5.5), 1)
	power := tr.Timeline("c-1", trace.MetricPower)
	near(t, "power during outage", power.At(3), 0)
	near(t, "power after recovery", power.At(5.5), 100)
}

func TestLegacyExecuteDiesLoudlyOnFault(t *testing.T) {
	e := New(testPlatform(), nil)
	mustInject(t, e, fault.MustSchedule(fault.Event{Time: 1, Kind: fault.HostDown, Target: "c-1"}))
	e.Spawn("w", "c-1", func(c *Ctx) { c.Execute(1000) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), `"c-1" failed`) {
		t.Errorf("Run = %v, want surfaced resource failure", err)
	}
}

func TestExecuteOnDeadHostFailsImmediately(t *testing.T) {
	e := New(testPlatform(), nil)
	mustInject(t, e, fault.MustSchedule(fault.Event{Time: 0, Kind: fault.HostDown, Target: "c-2"}))
	var err error
	e.Spawn("w", "c-2", func(c *Ctx) {
		c.Sleep(1) // let the fault strike first
		err = c.TryExecute(100)
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	var rf *ResourceFailure
	if !errors.As(err, &rf) {
		t.Errorf("TryExecute on dead host = %v, want ResourceFailure", err)
	}
}

func TestLinkDegradeSlowsTransfer(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	// 4000 B at 1000 B/s; at t=2 the host link drops to half speed, so
	// the remaining 2000 B take 4 s: completion at t=6.
	mustInject(t, e, fault.MustSchedule(
		fault.Event{Time: 2, Kind: fault.LinkDegrade, Target: "lnk:c-2", Factor: 0.5},
	))
	var doneAt float64
	e.Spawn("s", "c-1", func(c *Ctx) { c.Send("mb", nil, 4000) })
	e.Spawn("r", "c-2", func(c *Ctx) {
		c.Recv("mb")
		doneAt = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "degraded completion", doneAt, 6)
	if got := tr.StateAt("lnk:c-2", 3); got != trace.StateDegraded {
		t.Errorf("link state while degraded = %q, want %q", got, trace.StateDegraded)
	}
	near(t, "availability while degraded", tr.Timeline("lnk:c-2", trace.MetricAvailability).At(3), 0.5)
	near(t, "bandwidth while degraded", tr.Timeline("lnk:c-2", trace.MetricBandwidth).At(3), 500)
}

func TestLatencySpikeDelaysMatchedTransfers(t *testing.T) {
	e := New(testPlatform(), nil)
	mustInject(t, e, fault.MustSchedule(
		fault.Event{Time: 0, Kind: fault.LatencySpike, Target: "lnk:c-2", Factor: 3},
	))
	var doneAt float64
	e.Spawn("s", "c-1", func(c *Ctx) {
		c.Sleep(1) // match after the spike is standing
		c.Send("mb", nil, 1000)
	})
	e.Spawn("r", "c-2", func(c *Ctx) {
		c.Recv("mb")
		doneAt = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 s sleep + 3 s spike latency + 1 s transfer.
	near(t, "spiked completion", doneAt, 5)
}

func TestWaitTimeoutOnSilentPeer(t *testing.T) {
	e := New(testPlatform(), nil)
	var err error
	var at float64
	e.Spawn("r", "c-1", func(c *Ctx) {
		cm := c.Get("silence")
		_, err = cm.WaitTimeout(c, 2.5)
		at = c.Now()
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("WaitTimeout = %v, want ErrTimeout", err)
	}
	near(t, "timeout fired", at, 2.5)
	// The timed-out receive was withdrawn: a later send must not pair
	// with it.
	if mb := e.mailboxes["silence"]; mb != nil && len(mb.recvs) != 0 {
		t.Errorf("canceled receive still queued: %d pending", len(mb.recvs))
	}
}

func TestWaitTimeoutWinsOverTimer(t *testing.T) {
	e := New(testPlatform(), nil)
	var payload any
	var err error
	e.Spawn("s", "c-1", func(c *Ctx) { c.Send("mb", "hi", 1000) })
	e.Spawn("r", "c-2", func(c *Ctx) {
		cm := c.Get("mb")
		payload, err = cm.WaitTimeout(c, 50)
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != nil || payload != "hi" {
		t.Fatalf("WaitTimeout = (%v, %v), want (hi, nil)", payload, err)
	}
	// The losing timer must not keep the clock running to t=50.
	if e.Now() > 10 {
		t.Errorf("final time %g: canceled timer still fired", e.Now())
	}
}

func TestWaitAnyTimeout(t *testing.T) {
	e := New(testPlatform(), nil)
	var idx int
	var ok, ok2 bool
	e.Spawn("s", "c-1", func(c *Ctx) { c.Send("mb", nil, 1000) })
	e.Spawn("r", "c-2", func(c *Ctx) {
		first := c.Get("mb")
		never := c.Get("silence")
		idx, ok = c.WaitAnyTimeout([]*Comm{never, first}, 100)
		_, ok2 = c.WaitAnyTimeout([]*Comm{never}, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || idx != 1 {
		t.Errorf("WaitAnyTimeout = (%d, %v), want (1, true)", idx, ok)
	}
	if ok2 {
		t.Error("WaitAnyTimeout on silent mailbox did not time out")
	}
}

func TestDeadlockReportNamesMailbox(t *testing.T) {
	e := New(testPlatform(), nil)
	e.Spawn("stuck", "c-1", func(c *Ctx) { c.Recv("lost-mbox") })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") ||
		!strings.Contains(err.Error(), "stuck (mbox lost-mbox)") {
		t.Errorf("Run = %v, want deadlock report naming the mailbox", err)
	}
}

func TestActorPanicCapturesStack(t *testing.T) {
	e := New(testPlatform(), nil)
	e.Spawn("bad", "c-1", func(c *Ctx) { panic("kaboom") })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") ||
		!strings.Contains(err.Error(), "goroutine") {
		t.Errorf("Run = %v, want panic error with captured stack", err)
	}
}

func TestScheduleOutlivesActors(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	mustInject(t, e, fault.MustSchedule(
		fault.Event{Time: 40, Kind: fault.LinkDown, Target: "lnk:c-3"},
		fault.Event{Time: 50, Kind: fault.LinkUp, Target: "lnk:c-3"},
	))
	e.Spawn("quick", "c-1", func(c *Ctx) { c.Sleep(1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The full scenario is recorded even though the app ended at t=1.
	_, end := tr.Window()
	near(t, "window end", end, 50)
	if got := tr.StateAt("lnk:c-3", 45); got != trace.StateLinkDown {
		t.Errorf("state at t=45 = %q, want %q", got, trace.StateLinkDown)
	}
}

// Same seed, same workload ⇒ byte-for-byte identical trace output: the
// reproducibility the interactive analysis workflow depends on.
func TestChurnTraceReproducible(t *testing.T) {
	run := func(seed int64) []byte {
		p := testPlatform()
		tr := trace.New()
		e := New(p, tr)
		cfg := fault.ChurnConfig{
			Hosts:     []string{"c-1", "c-2", "c-3", "c-4"},
			Links:     []string{"lnk:c-1", "lnk:c-2", "lnk:c-3", "lnk:c-4"},
			Horizon:   30,
			HostChurn: 0.5,
			LinkChurn: 0.5,
		}
		mustInject(t, e, fault.Churn(seed, cfg))
		for i := 0; i < 4; i++ {
			host := []string{"c-1", "c-2", "c-3", "c-4"}[i]
			e.Spawn(names("job", i), host, func(c *Ctx) {
				for round := 0; round < 5; round++ {
					c.TryExecute(100) // faults tolerated, loop bounded
					c.Sleep(0.5)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := run(8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func mustInject(t *testing.T, e *Engine, s *fault.Schedule) {
	t.Helper()
	if err := e.InjectFaults(s); err != nil {
		t.Fatal(err)
	}
}
