package sim

import "fmt"

// pendingSend is a posted Put waiting for a matching receiver. Pending
// halves are pooled on the engine and recycled once matched or removed.
type pendingSend struct {
	comm     *Comm
	payload  any
	size     float64
	srcHost  string
	category string
}

// pendingRecv is a posted Get waiting for a matching sender.
type pendingRecv struct {
	comm    *Comm
	dstHost string
}

// mailbox matches senders and receivers in FIFO order, like SimGrid
// mailboxes. Each queue is consumed through a head cursor and reset when
// drained, so the backing arrays are reused instead of leaking via
// front-reslices.
type mailbox struct {
	name     string
	sends    []*pendingSend
	sendHead int
	recvs    []*pendingRecv
	recvHead int
}

func (mb *mailbox) popSend() *pendingSend {
	ps := mb.sends[mb.sendHead]
	mb.sends[mb.sendHead] = nil
	mb.sendHead++
	if mb.sendHead == len(mb.sends) {
		mb.sends = mb.sends[:0]
		mb.sendHead = 0
	}
	return ps
}

func (mb *mailbox) popRecv() *pendingRecv {
	pr := mb.recvs[mb.recvHead]
	mb.recvs[mb.recvHead] = nil
	mb.recvHead++
	if mb.recvHead == len(mb.recvs) {
		mb.recvs = mb.recvs[:0]
		mb.recvHead = 0
	}
	return pr
}

func (e *Engine) mbox(name string) *mailbox {
	mb, ok := e.mailboxes[name]
	if !ok {
		mb = &mailbox{name: name}
		e.mailboxes[name] = mb
	}
	return mb
}

func (e *Engine) acquireSend() *pendingSend {
	if n := len(e.psPool); n > 0 {
		ps := e.psPool[n-1]
		e.psPool[n-1] = nil
		e.psPool = e.psPool[:n-1]
		return ps
	}
	return &pendingSend{}
}

func (e *Engine) releaseSend(ps *pendingSend) {
	*ps = pendingSend{}
	e.psPool = append(e.psPool, ps)
}

func (e *Engine) acquireRecv() *pendingRecv {
	if n := len(e.prPool); n > 0 {
		pr := e.prPool[n-1]
		e.prPool[n-1] = nil
		e.prPool = e.prPool[:n-1]
		return pr
	}
	return &pendingRecv{}
}

func (e *Engine) releaseRecv(pr *pendingRecv) {
	*pr = pendingRecv{}
	e.prPool = append(e.prPool, pr)
}

func (e *Engine) put(a *Actor, mboxName string, payload any, size float64) *Comm {
	if size < 0 {
		panic(fmt.Sprintf("sim: negative message size %g", size))
	}
	mb := e.mbox(mboxName)
	comm := &Comm{eng: e, mb: mb, payload: payload}
	ps := e.acquireSend()
	ps.comm = comm
	ps.payload = payload
	ps.size = size
	ps.srcHost = a.host.Name
	ps.category = a.category
	if mb.recvHead < len(mb.recvs) {
		pr := mb.popRecv()
		e.match(ps, pr)
		e.releaseSend(ps)
		e.releaseRecv(pr)
		return comm
	}
	mb.sends = append(mb.sends, ps)
	return comm
}

func (e *Engine) get(a *Actor, mboxName string) *Comm {
	mb := e.mbox(mboxName)
	comm := &Comm{eng: e, mb: mb}
	pr := e.acquireRecv()
	pr.comm = comm
	pr.dstHost = a.host.Name
	if mb.sendHead < len(mb.sends) {
		ps := mb.popSend()
		e.match(ps, pr)
		e.releaseSend(ps)
		e.releaseRecv(pr)
		return comm
	}
	mb.recvs = append(mb.recvs, pr)
	return comm
}

// remove withdraws the unmatched half belonging to comm. It reports
// whether anything was removed.
func (mb *mailbox) remove(cm *Comm) bool {
	for i := mb.sendHead; i < len(mb.sends); i++ {
		if mb.sends[i].comm == cm {
			ps := mb.sends[i]
			copy(mb.sends[i:], mb.sends[i+1:])
			last := len(mb.sends) - 1
			mb.sends[last] = nil
			mb.sends = mb.sends[:last]
			if mb.sendHead == len(mb.sends) {
				mb.sends = mb.sends[:0]
				mb.sendHead = 0
			}
			cm.eng.releaseSend(ps)
			return true
		}
	}
	for i := mb.recvHead; i < len(mb.recvs); i++ {
		if mb.recvs[i].comm == cm {
			pr := mb.recvs[i]
			copy(mb.recvs[i:], mb.recvs[i+1:])
			last := len(mb.recvs) - 1
			mb.recvs[last] = nil
			mb.recvs = mb.recvs[:last]
			if mb.recvHead == len(mb.recvs) {
				mb.recvs = mb.recvs[:0]
				mb.recvHead = 0
			}
			cm.eng.releaseRecv(pr)
			return true
		}
	}
	return false
}

// route resolves and caches the platform route between two hosts: the
// link resources crossed and the summed base latency. Routes are static,
// so each ordered pair is resolved at most once per engine; standing
// latency spikes are applied per-match on top of the cached base.
func (e *Engine) route(src, dst string) (routeInfo, error) {
	key := HostPair{Src: src, Dst: dst}
	if ri, ok := e.routes[key]; ok {
		return ri, nil
	}
	route, err := e.plat.Route(src, dst)
	if err != nil {
		return routeInfo{}, err
	}
	var ri routeInfo
	for _, l := range route {
		ri.links = append(ri.links, e.links[l.Name])
		ri.latency += l.Latency
	}
	e.routes[key] = ri
	return ri, nil
}

// match pairs a posted send with a posted receive and starts the transfer
// over the platform route between their hosts.
func (e *Engine) match(ps *pendingSend, pr *pendingRecv) {
	ri, err := e.route(ps.srcHost, pr.dstHost)
	if err != nil {
		// A broken platform description: fail the communication so both
		// sides wake with an error, and surface it through Run.
		err = fmt.Errorf("sim: no route %s -> %s: %w", ps.srcHost, pr.dstHost, err)
		e.fail(err)
		act := e.acquireActivity()
		act.kind = actComm
		act.failure = err
		wireComm(act, ps, pr)
		e.complete(act)
		return
	}
	latency := ri.latency
	if len(e.extraLatency) > 0 {
		for _, l := range ri.links {
			latency += e.extraLatency[l.name]
		}
	}
	act := e.acquireActivity()
	act.kind = actComm
	act.category = ps.category
	act.resources = append(act.resources, ri.links...)
	act.remaining = ps.size
	act.delay = latency
	act.payload = ps.payload
	act.srcHost = ps.srcHost
	act.dstHost = pr.dstHost
	act.totalBytes = ps.size
	// Same-host transfers have no links and no latency: they complete
	// instantly, which startActivity handles.
	wireComm(act, ps, pr)
	e.startActivity(act)
}

// wireComm binds the matched activity to both Comm handles and moves
// their pending waiters onto it.
func wireComm(act *activity, ps *pendingSend, pr *pendingRecv) {
	ps.comm.act = act
	ps.comm.matched = true
	pr.comm.act = act
	pr.comm.matched = true
	pr.comm.payload = ps.payload
	act.comms[0] = ps.comm
	act.comms[1] = pr.comm
	for _, w := range ps.comm.pendingWaiters {
		act.addWaiter(w)
	}
	for _, w := range pr.comm.pendingWaiters {
		act.addWaiter(w)
	}
	ps.comm.pendingWaiters = nil
	pr.comm.pendingWaiters = nil
}
