package sim

import "fmt"

// pendingSend is a posted Put waiting for a matching receiver.
type pendingSend struct {
	comm     *Comm
	payload  any
	size     float64
	srcHost  string
	category string
	label    string
}

// pendingRecv is a posted Get waiting for a matching sender.
type pendingRecv struct {
	comm    *Comm
	dstHost string
}

// mailbox matches senders and receivers in FIFO order, like SimGrid
// mailboxes.
type mailbox struct {
	name  string
	sends []*pendingSend
	recvs []*pendingRecv
}

func (e *Engine) mbox(name string) *mailbox {
	mb, ok := e.mailboxes[name]
	if !ok {
		mb = &mailbox{name: name}
		e.mailboxes[name] = mb
	}
	return mb
}

func (e *Engine) put(a *Actor, mboxName string, payload any, size float64) *Comm {
	if size < 0 {
		panic(fmt.Sprintf("sim: negative message size %g", size))
	}
	mb := e.mbox(mboxName)
	comm := &Comm{eng: e, mb: mb, payload: payload}
	ps := &pendingSend{
		comm:     comm,
		payload:  payload,
		size:     size,
		srcHost:  a.host.Name,
		category: a.category,
		label:    fmt.Sprintf("comm:%s->%s", a.name, mboxName),
	}
	if len(mb.recvs) > 0 {
		pr := mb.recvs[0]
		mb.recvs = mb.recvs[1:]
		e.match(ps, pr)
		return comm
	}
	mb.sends = append(mb.sends, ps)
	return comm
}

func (e *Engine) get(a *Actor, mboxName string) *Comm {
	mb := e.mbox(mboxName)
	comm := &Comm{eng: e, mb: mb}
	pr := &pendingRecv{comm: comm, dstHost: a.host.Name}
	if len(mb.sends) > 0 {
		ps := mb.sends[0]
		mb.sends = mb.sends[1:]
		e.match(ps, pr)
		return comm
	}
	mb.recvs = append(mb.recvs, pr)
	return comm
}

// remove withdraws the unmatched half belonging to comm. It reports
// whether anything was removed.
func (mb *mailbox) remove(cm *Comm) bool {
	for i, ps := range mb.sends {
		if ps.comm == cm {
			mb.sends = append(mb.sends[:i], mb.sends[i+1:]...)
			return true
		}
	}
	for i, pr := range mb.recvs {
		if pr.comm == cm {
			mb.recvs = append(mb.recvs[:i], mb.recvs[i+1:]...)
			return true
		}
	}
	return false
}

// match pairs a posted send with a posted receive and starts the transfer
// over the platform route between their hosts.
func (e *Engine) match(ps *pendingSend, pr *pendingRecv) {
	route, err := e.plat.Route(ps.srcHost, pr.dstHost)
	if err != nil {
		// A broken platform description: fail the communication so both
		// sides wake with an error, and surface it through Run.
		err = fmt.Errorf("sim: no route %s -> %s: %w", ps.srcHost, pr.dstHost, err)
		e.fail(err)
		act := &activity{kind: actComm, label: ps.label, failure: err}
		wireComm(act, ps, pr)
		e.complete(act)
		return
	}
	var links []*resource
	var latency float64
	for _, l := range route {
		links = append(links, e.links[l.Name])
		latency += l.Latency
		if x := e.extraLatency[l.Name]; x > 0 {
			latency += x
		}
	}
	act := &activity{
		kind:       actComm,
		label:      ps.label,
		category:   ps.category,
		resources:  links,
		remaining:  ps.size,
		delay:      latency,
		payload:    ps.payload,
		srcHost:    ps.srcHost,
		dstHost:    pr.dstHost,
		totalBytes: ps.size,
	}
	// Same-host transfers have no links and no latency: they complete
	// instantly, which startActivity handles.
	wireComm(act, ps, pr)
	e.startActivity(act)
}

// wireComm binds the matched activity to both Comm handles and moves
// their pending waiters onto it.
func wireComm(act *activity, ps *pendingSend, pr *pendingRecv) {
	ps.comm.act = act
	pr.comm.act = act
	pr.comm.payload = ps.payload
	for _, w := range ps.comm.pendingWaiters {
		act.addWaiter(w)
	}
	for _, w := range pr.comm.pendingWaiters {
		act.addWaiter(w)
	}
	ps.comm.pendingWaiters = nil
	pr.comm.pendingWaiters = nil
}
