package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"viva/internal/fault"
	"viva/internal/obs"
	"viva/internal/platform"
	"viva/internal/trace"
)

// Self-observation: the simulator reports its own throughput. All are
// single atomic adds on paths whose real work is orders of magnitude
// larger, so the healthy-path benchmarks stay within noise.
var (
	obsEvents = obs.Default.Counter("viva_sim_events_total",
		"Simulation events processed (activity completions, delays, faults).")
	obsRecomputes = obs.Default.Counter("viva_sim_recomputes_total",
		"Max-min sharing re-solves over dirty components.")
	obsFlowsSettled = obs.Default.Counter("viva_sim_flows_settled_total",
		"Flow progress settlements before a rate change.")
	obsActivitiesDone = obs.Default.Counter("viva_sim_activities_completed_total",
		"Activities (executions, communications, sleeps) completed.")
	obsActorsSpawned = obs.Default.Counter("viva_sim_actors_spawned_total",
		"Actors spawned onto hosts.")
	obsFaultsApplied = obs.Default.Counter("viva_sim_faults_applied_total",
		"Fault-schedule events applied to resources.")
)

// Engine owns simulated time, the resource pool, the actors and the event
// queue. Create one with New, spawn actors, then call Run.
type Engine struct {
	plat *platform.Platform
	tr   *trace.Trace

	now    float64
	nextID int64

	actors   []*Actor
	runnable []*Actor

	hosts map[string]*resource // host name -> compute resource
	links map[string]*resource // link name -> network resource

	mailboxes map[string]*mailbox

	dirty map[*resource]struct{}
	queue eventHeap

	categories  map[string]bool // categories seen, for per-category tracing
	traceCats   bool
	traceStates bool

	commBytes map[HostPair]float64 // delivered bytes per (src, dst) hosts

	// Fault injection (see InjectFaults). faults is the merged schedule,
	// faultIdx the next event to apply, extraLatency the standing
	// per-link latency spikes. All nil/zero unless faults are armed, so
	// the healthy path pays only one integer compare per loop iteration.
	faults       []fault.Event
	faultIdx     int
	extraLatency map[string]float64

	// err is the first structural failure (unknown spawn host, missing
	// route); Run reports it instead of continuing on a broken setup.
	err error

	// fullRecompute disables the lazy component-based rate invalidation:
	// every activity change re-solves the whole platform. Only useful to
	// measure how much the lazy scheme buys (see the ablation benchmark).
	fullRecompute bool

	// Stats, exposed for benchmarks and tests.
	Events     int
	Recomputes int
}

// New creates an engine over the platform. If tr is non-nil the platform
// is declared into it and resource usage is traced while running.
func New(plat *platform.Platform, tr *trace.Trace) *Engine {
	e := &Engine{
		plat:       plat,
		tr:         tr,
		hosts:      make(map[string]*resource),
		links:      make(map[string]*resource),
		mailboxes:  make(map[string]*mailbox),
		dirty:      make(map[*resource]struct{}),
		categories: make(map[string]bool),
		commBytes:  make(map[HostPair]float64),
	}
	if tr != nil {
		plat.DeclareInto(tr)
	}
	for _, h := range plat.Hosts() {
		e.hosts[h.Name] = &resource{
			name:        h.Name,
			capacity:    h.Power,
			nominal:     h.Power,
			degrade:     1,
			isHost:      true,
			flows:       make(map[*activity]struct{}),
			traceUsage:  tr != nil,
			usageMetric: trace.MetricUsage,
			lastByCat:   make(map[string]float64),
		}
	}
	for _, l := range plat.Links() {
		e.links[l.Name] = &resource{
			name:        l.Name,
			capacity:    l.Bandwidth,
			nominal:     l.Bandwidth,
			degrade:     1,
			flows:       make(map[*activity]struct{}),
			traceUsage:  tr != nil,
			usageMetric: trace.MetricTraffic,
			lastByCat:   make(map[string]float64),
		}
	}
	return e
}

// TraceCategories enables per-category usage tracing: in addition to the
// total usage of every resource, one extra metric "usage:<cat>" (hosts) or
// "traffic:<cat>" (links) is recorded per activity category.
func (e *Engine) TraceCategories(enable bool) { e.traceCats = enable }

// SetFullRecompute disables the lazy partial invalidation (ablation knob:
// every rate change re-solves the full platform instead of the affected
// component).
func (e *Engine) SetFullRecompute(enable bool) { e.fullRecompute = enable }

// TraceStates enables behavioural tracing: every actor becomes a
// "process" resource (child of its host) whose state — compute, send,
// recv, wait, sleep — is recorded over time. This is the data classical
// Gantt-chart timeline views display; enabling it lets the same trace
// feed both the topology-based view and the Gantt baseline.
func (e *Engine) TraceStates(enable bool) { e.traceStates = enable }

// SetHostPower changes a host's compute capacity from the current
// simulated time on: running executions immediately share the new value
// and the host's power timeline records the change. It models dynamic
// availability (machines slowing down, going away with power 0, or coming
// back), which the paper's trace model explicitly covers.
func (e *Engine) SetHostPower(host string, power float64) error {
	r, ok := e.hosts[host]
	if !ok {
		return fmt.Errorf("sim: unknown host %q", host)
	}
	if power < 0 {
		return fmt.Errorf("sim: negative power %g for host %q", power, host)
	}
	r.nominal = power
	if r.down {
		// Takes effect at the recovery event; the power timeline keeps
		// showing 0 until then.
		return nil
	}
	r.capacity = power
	e.dirty[r] = struct{}{}
	if e.tr != nil {
		mustSet(e.tr.Set(e.now, host, trace.MetricPower, power))
	}
	return nil
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Platform returns the platform the engine simulates.
func (e *Engine) Platform() *platform.Platform { return e.plat }

// fail records the first structural error; Run reports it.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Spawn registers an actor on a host. The actor starts running when Run is
// called (or immediately if spawned from inside a running actor).
//
// Spawning on an unknown host records an error that the next Run call
// returns; the result is an inert, already-finished actor, so a bad
// platform file surfaces as an error instead of a crash.
func (e *Engine) Spawn(name, host string, fn func(*Ctx)) *Actor {
	h := e.plat.Host(host)
	if h == nil {
		e.fail(fmt.Errorf("sim: spawn %q on unknown host %q", name, host))
		return &Actor{name: name, eng: e, state: actorDone}
	}
	a := &Actor{
		id:     e.nextID,
		name:   name,
		host:   h,
		eng:    e,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		state:  actorReady,
	}
	e.nextID++
	obsActorsSpawned.Inc()
	e.actors = append(e.actors, a)
	if e.traceStates && e.tr != nil {
		e.tr.MustDeclareResource(a.name, "process", h.Name)
		a.traceStates = true
	}
	a.queued = true
	e.runnable = append(e.runnable, a)
	a.start(fn)
	return a
}

// Run executes the simulation until every actor finished. It returns an
// error if an actor panicked, if the setup was structurally broken
// (unknown spawn host, missing route), or if the system deadlocks
// (actors blocked forever on unmatched communications).
func (e *Engine) Run() error {
	if err := e.drainRunnable(); err != nil {
		return err
	}
	if e.err != nil {
		return e.err
	}
	for {
		e.recomputeDirty()
		if e.faultIdx < len(e.faults) {
			// A fault is due before (or instead of) the next activity
			// event: apply it and loop — failed activities may have woken
			// actors, and the recompute must see the new capacities.
			next, pending := e.peekEventTime()
			if !pending || e.faults[e.faultIdx].Time <= next {
				fe := e.faults[e.faultIdx]
				e.faultIdx++
				if fe.Time > e.now {
					e.now = fe.Time
				}
				e.Events++
				obsEvents.Inc()
				obsFaultsApplied.Inc()
				e.applyFault(fe)
				if err := e.drainRunnable(); err != nil {
					return err
				}
				if e.err != nil {
					return e.err
				}
				continue
			}
		}
		act := e.popEvent()
		if act == nil {
			break
		}
		t, _ := act.eventTime()
		if t < e.now {
			t = e.now // numerical safety: time never goes backward
		}
		e.now = t
		e.Events++
		obsEvents.Inc()
		e.fire(act)
		if err := e.drainRunnable(); err != nil {
			return err
		}
		if e.err != nil {
			return e.err
		}
	}
	// Nothing left to happen: any actor still alive is deadlocked.
	var stuck []string
	for _, a := range e.actors {
		if a.state != actorDone {
			desc := a.name
			if a.waiting != "" {
				desc += " (" + a.waiting + ")"
			}
			stuck = append(stuck, desc)
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return fmt.Errorf("sim: deadlock at t=%g, %d actor(s) blocked: %v", e.now, len(stuck), stuck)
	}
	if e.tr != nil {
		e.tr.SetEnd(e.now)
	}
	return nil
}

// drainRunnable runs every runnable actor until it blocks or finishes.
// Actors woken or spawned while draining are processed too.
func (e *Engine) drainRunnable() error {
	for len(e.runnable) > 0 {
		a := e.runnable[0]
		e.runnable = e.runnable[1:]
		a.queued = false
		if a.state == actorDone {
			continue
		}
		a.state = actorRunning
		a.resume <- struct{}{}
		<-a.parked
		if a.state == actorDone && a.err != nil {
			return fmt.Errorf("sim: actor %q failed: %w", a.name, a.err)
		}
	}
	return nil
}

func (e *Engine) wake(a *Actor) {
	if a.state == actorDone || a.queued {
		return
	}
	a.queued = true
	e.runnable = append(e.runnable, a)
}

// fire processes the pending event of an activity: end of its delay phase
// or completion of its work phase.
func (e *Engine) fire(act *activity) {
	if act.done {
		return
	}
	if !act.attached {
		// Delay elapsed.
		act.delay = 0
		act.lastUpdate = e.now
		if act.kind == actSleep || act.remaining <= 0 || len(act.resources) == 0 {
			e.complete(act)
			return
		}
		if r := e.failedResource(act); r != nil {
			// The resource died during the delay phase; attaching would
			// leave a zero-rate flow with no pending event.
			e.failActivity(act, r)
			return
		}
		// Enter the flow phase.
		act.attached = true
		for _, r := range act.resources {
			r.flows[act] = struct{}{}
			e.dirty[r] = struct{}{}
		}
		return
	}
	act.settle(e.now)
	act.remaining = 0
	e.complete(act)
}

// HostPair identifies a directed host-to-host communication.
type HostPair struct {
	Src, Dst string
}

// CommBytes returns the bytes delivered between every (source,
// destination) host pair so far — the raw data of a communication matrix.
// The returned map is a copy.
func (e *Engine) CommBytes() map[HostPair]float64 {
	out := make(map[HostPair]float64, len(e.commBytes))
	for k, v := range e.commBytes {
		out[k] = v
	}
	return out
}

func (e *Engine) complete(act *activity) {
	if act.done {
		return
	}
	act.done = true
	obsActivitiesDone.Inc()
	if act.kind == actComm && act.totalBytes > 0 {
		delivered := act.totalBytes
		if act.failure != nil {
			delivered -= act.remaining // only what crossed before the fault
		}
		if delivered > 0 {
			e.commBytes[HostPair{Src: act.srcHost, Dst: act.dstHost}] += delivered
		}
	}
	if act.attached {
		for _, r := range act.resources {
			delete(r.flows, act)
			e.dirty[r] = struct{}{}
		}
		act.attached = false
	}
	for _, w := range act.waiters {
		e.wake(w)
	}
	act.waiters = nil
}

// startActivity registers a new activity and schedules its first event.
func (e *Engine) startActivity(act *activity) {
	act.id = e.nextID
	e.nextID++
	act.lastUpdate = e.now
	if act.category != "" {
		e.categories[act.category] = true
	}
	if r := e.failedResource(act); r != nil {
		// Work placed on a dead resource fails immediately, like a
		// refused connection; waiters observe the failure through the
		// error-returning wait variants.
		e.failActivity(act, r)
		return
	}
	if act.delay > 0 {
		// Delay phase first; the flow attaches when it elapses.
		e.pushEvent(act)
		return
	}
	if act.kind == actSleep || act.remaining <= 0 || len(act.resources) == 0 {
		// Nothing to do: complete immediately (zero-size transfer with no
		// latency, zero-flop execution, zero sleep).
		e.complete(act)
		return
	}
	act.attached = true
	for _, r := range act.resources {
		r.flows[act] = struct{}{}
		e.dirty[r] = struct{}{}
	}
}

func (e *Engine) pushEvent(act *activity) {
	t, ok := act.eventTime()
	if !ok {
		return
	}
	act.seq++
	heap.Push(&e.queue, eventEntry{t: t, seq: act.seq, act: act})
}

func (e *Engine) popEvent() *activity {
	for e.queue.Len() > 0 {
		entry := heap.Pop(&e.queue).(eventEntry)
		if entry.act.done || entry.act.seq != entry.seq {
			continue // stale
		}
		return entry.act
	}
	return nil
}

// recomputeDirty re-solves max-min sharing inside every connected component
// touched by recent activity changes, settles and re-times the affected
// flows, and traces resource usage changes.
func (e *Engine) recomputeDirty() {
	if len(e.dirty) == 0 {
		return
	}
	if e.fullRecompute {
		for _, r := range e.hosts {
			e.dirty[r] = struct{}{}
		}
		for _, r := range e.links {
			e.dirty[r] = struct{}{}
		}
	}
	dirty := make([]*resource, 0, len(e.dirty))
	for r := range e.dirty {
		dirty = append(dirty, r)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].name < dirty[j].name })
	e.dirty = make(map[*resource]struct{})

	visited := make(map[*resource]bool)
	for _, root := range dirty {
		if visited[root] {
			continue
		}
		// BFS over the component of resources connected through flows.
		var resources []*resource
		var flows []*activity
		flowSeen := make(map[*activity]bool)
		stack := []*resource{root}
		visited[root] = true
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			resources = append(resources, r)
			for _, f := range r.sortedFlows() {
				if flowSeen[f] {
					continue
				}
				flowSeen[f] = true
				flows = append(flows, f)
				for _, fr := range f.resources {
					if !visited[fr] {
						visited[fr] = true
						stack = append(stack, fr)
					}
				}
			}
		}
		e.Recomputes++
		obsRecomputes.Inc()
		obsFlowsSettled.Add(uint64(len(flows)))
		// Settle progress under the old rates before changing them.
		for _, f := range flows {
			f.settle(e.now)
		}
		solveMaxMin(resources, flows)
		for _, f := range flows {
			e.pushEvent(f)
		}
		for _, r := range resources {
			e.traceResource(r)
		}
	}
}

// traceResource records the current total usage of a resource (and the
// per-category split when enabled) if it changed since last traced.
func (e *Engine) traceResource(r *resource) {
	if !r.traceUsage || e.tr == nil {
		return
	}
	total := 0.0
	var byCat map[string]float64
	if e.traceCats {
		byCat = make(map[string]float64)
	}
	// Sum in flow-id order: float addition isn't associative, so summing
	// in map order would make the traced totals run-to-run unstable.
	for _, f := range r.sortedFlows() {
		if !f.attached || f.done {
			continue
		}
		total += f.rate
		if byCat != nil {
			byCat[f.category] += f.rate
		}
	}
	if total != r.lastUsage {
		mustSet(e.tr.Set(e.now, r.name, r.usageMetric, total))
		r.lastUsage = total
	}
	if byCat != nil {
		// Write categories that changed, including ones dropping to zero.
		cats := make([]string, 0, len(r.lastByCat)+len(byCat))
		seen := make(map[string]bool)
		for c := range byCat {
			cats = append(cats, c)
			seen[c] = true
		}
		for c := range r.lastByCat {
			if !seen[c] {
				cats = append(cats, c)
			}
		}
		sort.Strings(cats)
		for _, c := range cats {
			if c == "" {
				continue
			}
			v := byCat[c]
			if v != r.lastByCat[c] {
				mustSet(e.tr.Set(e.now, r.name, r.usageMetric+":"+c, v))
				if v == 0 {
					delete(r.lastByCat, c)
				} else {
					r.lastByCat[c] = v
				}
			}
		}
	}
}

func mustSet(err error) {
	if err != nil {
		panic(err)
	}
}

// Categories returns the sorted activity categories observed so far.
func (e *Engine) Categories() []string {
	out := make([]string, 0, len(e.categories))
	for c := range e.categories {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
