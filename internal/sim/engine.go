package sim

import (
	"cmp"
	"fmt"
	"maps"
	"slices"
	"sort"

	"viva/internal/fault"
	"viva/internal/obs"
	"viva/internal/platform"
	"viva/internal/trace"
)

// Self-observation: the simulator reports its own throughput. All are
// single atomic adds on paths whose real work is orders of magnitude
// larger, so the healthy-path benchmarks stay within noise.
var (
	obsEvents = obs.Default.Counter("viva_sim_events_total",
		"Simulation events processed (activity completions, delays, faults).")
	obsRecomputes = obs.Default.Counter("viva_sim_recomputes_total",
		"Max-min sharing re-solves over dirty components.")
	obsFlowsSettled = obs.Default.Counter("viva_sim_flows_settled_total",
		"Flow progress settlements before a rate change.")
	obsActivitiesDone = obs.Default.Counter("viva_sim_activities_completed_total",
		"Activities (executions, communications, sleeps) completed.")
	obsActorsSpawned = obs.Default.Counter("viva_sim_actors_spawned_total",
		"Actors spawned onto hosts.")
	obsFaultsApplied = obs.Default.Counter("viva_sim_faults_applied_total",
		"Fault-schedule events applied to resources.")
	obsQueueDepth = obs.Default.Gauge("viva_sim_event_queue_depth",
		"Live entries in the engine's indexed event queue.")
	obsActivityPoolFree = obs.Default.Gauge("viva_sim_activity_pool_free",
		"Recycled activity objects parked on the engine's free list.")
)

// routeInfo caches a resolved platform route: the link resources crossed
// and the summed base latency. Routes are static, so each (src, dst) pair
// is resolved at most once per engine.
type routeInfo struct {
	links   []*resource
	latency float64
}

// Engine owns simulated time, the resource pool, the actors and the event
// queue. Create one with New, spawn actors, then call Run.
//
// The hot loop — recompute dirty components, pop the next event, fire it,
// drain woken actors — is engineered to allocate nothing in steady state:
// component scans use epoch stamps and persistent scratch buffers instead
// of per-call maps, the event queue is an indexed heap updated in place,
// and activities plus mailbox bookkeeping are recycled through free lists.
type Engine struct {
	plat *platform.Platform
	tr   *trace.Trace

	now    float64
	nextID int64

	actors []*Actor

	// runnable is a ring: wake appends, drainRunnable consumes through
	// runHead and resets both when drained, so the backing array is reused
	// instead of being re-allocated (and pinned) by front-reslicing.
	runnable []*Actor
	runHead  int

	hosts map[string]*resource // host name -> compute resource
	links map[string]*resource // link name -> network resource
	res   []*resource          // every resource, name-ordered (order fields index it)

	mailboxes map[string]*mailbox
	routes    map[HostPair]routeInfo

	// dirtyList collects resources touched since the last recompute;
	// resource.inDirty dedupes. Replaces a per-recompute map rebuild.
	dirtyList []*resource

	// queue is an indexed binary min-heap ordered by (time, activity id).
	// Each live activity appears at most once (activity.heapIdx), so
	// reschedules update in place instead of stacking stale entries.
	queue []eventEntry

	// Recompute scan state: scanEpoch stamps visited resources/flows
	// (activity.scanned / resource.scanned), the scan* slices are the
	// persistent BFS scratch.
	scanEpoch uint64
	scanStack []*resource
	scanRes   []*resource
	scanFlows []*activity

	// Free lists. Completed activities and consumed mailbox halves are
	// recycled; see releaseActivity for the ownership rules.
	actPool []*activity
	psPool  []*pendingSend
	prPool  []*pendingRecv

	// traceResource scratch, reused across calls.
	catScratch map[string]float64
	catKeys    []string

	faultScratch []*activity // takeDown's snapshot of the victim flows

	categories  map[string]bool // categories seen, for per-category tracing
	traceCats   bool
	traceStates bool

	commBytes map[HostPair]float64 // delivered bytes per (src, dst) hosts

	// Fault injection (see InjectFaults). faults is the merged schedule,
	// faultIdx the next event to apply, extraLatency the standing
	// per-link latency spikes. All nil/zero unless faults are armed, so
	// the healthy path pays only one integer compare per loop iteration.
	faults       []fault.Event
	faultIdx     int
	extraLatency map[string]float64

	// err is the first structural failure (unknown spawn host, missing
	// route); Run reports it instead of continuing on a broken setup.
	err error

	// fullRecompute disables the lazy component-based rate invalidation:
	// every activity change re-solves the whole platform. Only useful to
	// measure how much the lazy scheme buys (see the ablation benchmark).
	fullRecompute bool

	// Stats, exposed for benchmarks and tests.
	Events     int
	Recomputes int
}

// New creates an engine over the platform. If tr is non-nil the platform
// is declared into it and resource usage is traced while running.
func New(plat *platform.Platform, tr *trace.Trace) *Engine {
	e := &Engine{
		plat:       plat,
		tr:         tr,
		hosts:      make(map[string]*resource),
		links:      make(map[string]*resource),
		mailboxes:  make(map[string]*mailbox),
		routes:     make(map[HostPair]routeInfo),
		categories: make(map[string]bool),
		commBytes:  make(map[HostPair]float64),
	}
	if tr != nil {
		plat.DeclareInto(tr)
	}
	for _, h := range plat.Hosts() {
		r := &resource{
			name:        h.Name,
			capacity:    h.Power,
			nominal:     h.Power,
			degrade:     1,
			isHost:      true,
			flowsSorted: true,
			traceUsage:  tr != nil,
			usageMetric: trace.MetricUsage,
			lastByCat:   make(map[string]float64),
		}
		e.hosts[h.Name] = r
		e.res = append(e.res, r)
	}
	for _, l := range plat.Links() {
		r := &resource{
			name:        l.Name,
			capacity:    l.Bandwidth,
			nominal:     l.Bandwidth,
			degrade:     1,
			flowsSorted: true,
			traceUsage:  tr != nil,
			usageMetric: trace.MetricTraffic,
			lastByCat:   make(map[string]float64),
		}
		e.links[l.Name] = r
		e.res = append(e.res, r)
	}
	// Rank resources by name once: the recompute and the solver order by
	// this integer instead of re-comparing strings on every hot-path sort.
	slices.SortFunc(e.res, func(a, b *resource) int { return cmp.Compare(a.name, b.name) })
	for i, r := range e.res {
		r.order = int32(i)
	}
	return e
}

// TraceCategories enables per-category usage tracing: in addition to the
// total usage of every resource, one extra metric "usage:<cat>" (hosts) or
// "traffic:<cat>" (links) is recorded per activity category.
func (e *Engine) TraceCategories(enable bool) { e.traceCats = enable }

// SetFullRecompute disables the lazy partial invalidation (ablation knob:
// every rate change re-solves the full platform instead of the affected
// component).
func (e *Engine) SetFullRecompute(enable bool) { e.fullRecompute = enable }

// TraceStates enables behavioural tracing: every actor becomes a
// "process" resource (child of its host) whose state — compute, send,
// recv, wait, sleep — is recorded over time. This is the data classical
// Gantt-chart timeline views display; enabling it lets the same trace
// feed both the topology-based view and the Gantt baseline.
func (e *Engine) TraceStates(enable bool) { e.traceStates = enable }

// SetHostPower changes a host's compute capacity from the current
// simulated time on: running executions immediately share the new value
// and the host's power timeline records the change. It models dynamic
// availability (machines slowing down, going away with power 0, or coming
// back), which the paper's trace model explicitly covers.
func (e *Engine) SetHostPower(host string, power float64) error {
	r, ok := e.hosts[host]
	if !ok {
		return fmt.Errorf("sim: unknown host %q", host)
	}
	if power < 0 {
		return fmt.Errorf("sim: negative power %g for host %q", power, host)
	}
	r.nominal = power
	if r.down {
		// Takes effect at the recovery event; the power timeline keeps
		// showing 0 until then.
		return nil
	}
	r.capacity = power
	e.markDirty(r)
	if e.tr != nil {
		mustSet(e.tr.Set(e.now, host, trace.MetricPower, power))
	}
	return nil
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Platform returns the platform the engine simulates.
func (e *Engine) Platform() *platform.Platform { return e.plat }

// fail records the first structural error; Run reports it.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// markDirty queues a resource for the next recompute (idempotent).
func (e *Engine) markDirty(r *resource) {
	if !r.inDirty {
		r.inDirty = true
		e.dirtyList = append(e.dirtyList, r)
	}
}

// acquireActivity takes a recycled activity from the free list, or
// allocates one. The returned activity has zeroed fields and reusable
// resources/waiters backing arrays.
func (e *Engine) acquireActivity() *activity {
	if n := len(e.actPool); n > 0 {
		act := e.actPool[n-1]
		e.actPool[n-1] = nil
		e.actPool = e.actPool[:n-1]
		obsActivityPoolFree.Set(float64(n - 1))
		return act
	}
	return &activity{heapIdx: -1}
}

// releaseActivity recycles an activity. Ownership rules: communication
// activities are released by complete() — their Comm handles carry the
// final state, so nothing references the activity afterwards. Execution,
// sleep and timer activities are released by the Ctx call that created
// them, after its wait loop observed done (waiters still poll act.done,
// so the engine must not recycle them earlier).
func (e *Engine) releaseActivity(act *activity) {
	res, waiters := act.resources[:0], act.waiters[:0]
	*act = activity{heapIdx: -1, resources: res, waiters: waiters}
	e.actPool = append(e.actPool, act)
	obsActivityPoolFree.Set(float64(len(e.actPool)))
}

// Spawn registers an actor on a host. The actor starts running when Run is
// called (or immediately if spawned from inside a running actor).
//
// Spawning on an unknown host records an error that the next Run call
// returns; the result is an inert, already-finished actor, so a bad
// platform file surfaces as an error instead of a crash.
func (e *Engine) Spawn(name, host string, fn func(*Ctx)) *Actor {
	h := e.plat.Host(host)
	if h == nil {
		e.fail(fmt.Errorf("sim: spawn %q on unknown host %q", name, host))
		return &Actor{name: name, eng: e, state: actorDone}
	}
	a := &Actor{
		id:     e.nextID,
		name:   name,
		host:   h,
		eng:    e,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		state:  actorReady,
	}
	e.nextID++
	obsActorsSpawned.Inc()
	e.actors = append(e.actors, a)
	if e.traceStates && e.tr != nil {
		e.tr.MustDeclareResource(a.name, "process", h.Name)
		a.traceStates = true
	}
	a.queued = true
	e.runnable = append(e.runnable, a)
	a.start(fn)
	return a
}

// Run executes the simulation until every actor finished. It returns an
// error if an actor panicked, if the setup was structurally broken
// (unknown spawn host, missing route), or if the system deadlocks
// (actors blocked forever on unmatched communications).
func (e *Engine) Run() error {
	if err := e.drainRunnable(); err != nil {
		return err
	}
	if e.err != nil {
		return e.err
	}
	for {
		e.recomputeDirty()
		if e.faultIdx < len(e.faults) {
			// A fault is due before (or instead of) the next activity
			// event: apply it and loop — failed activities may have woken
			// actors, and the recompute must see the new capacities.
			next, pending := e.peekEventTime()
			if !pending || e.faults[e.faultIdx].Time <= next {
				fe := e.faults[e.faultIdx]
				e.faultIdx++
				if fe.Time > e.now {
					e.now = fe.Time
				}
				e.Events++
				obsEvents.Inc()
				obsFaultsApplied.Inc()
				// Fault injections are exactly the kind of rare,
				// behaviour-changing moment the black box exists for: a
				// shed or latency anomaly minutes later should be
				// attributable to this record. a = fault kind, b =
				// simulated time in milliseconds.
				obs.Flight.Record(obs.FlightFault, uint64(e.Events), int64(fe.Kind), int64(fe.Time*1e3))
				e.applyFault(fe)
				if err := e.drainRunnable(); err != nil {
					return err
				}
				if e.err != nil {
					return e.err
				}
				continue
			}
		}
		act := e.popEvent()
		if act == nil {
			break
		}
		t, _ := act.eventTime()
		if t < e.now {
			t = e.now // numerical safety: time never goes backward
		}
		e.now = t
		e.Events++
		obsEvents.Inc()
		e.fire(act)
		if err := e.drainRunnable(); err != nil {
			return err
		}
		if e.err != nil {
			return e.err
		}
	}
	// Nothing left to happen: any actor still alive is deadlocked.
	var stuck []string
	for _, a := range e.actors {
		if a.state != actorDone {
			desc := a.name
			if a.waiting != "" {
				desc += " (" + a.waiting + ")"
			}
			stuck = append(stuck, desc)
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return fmt.Errorf("sim: deadlock at t=%g, %d actor(s) blocked: %v", e.now, len(stuck), stuck)
	}
	if e.tr != nil {
		e.tr.SetEnd(e.now)
	}
	return nil
}

// drainRunnable runs every runnable actor until it blocks or finishes.
// Actors woken or spawned while draining are processed too. The queue is
// consumed through a cursor and reset when drained, so the backing array
// survives the whole run instead of being abandoned by front-reslicing.
func (e *Engine) drainRunnable() error {
	for e.runHead < len(e.runnable) {
		a := e.runnable[e.runHead]
		e.runnable[e.runHead] = nil
		e.runHead++
		a.queued = false
		if a.state == actorDone {
			continue
		}
		a.state = actorRunning
		a.resume <- struct{}{}
		<-a.parked
		if a.state == actorDone && a.err != nil {
			return fmt.Errorf("sim: actor %q failed: %w", a.name, a.err)
		}
	}
	e.runnable = e.runnable[:0]
	e.runHead = 0
	return nil
}

func (e *Engine) wake(a *Actor) {
	if a.state == actorDone || a.queued {
		return
	}
	a.queued = true
	e.runnable = append(e.runnable, a)
}

// fire processes the pending event of an activity: end of its delay phase
// or completion of its work phase.
func (e *Engine) fire(act *activity) {
	if act.done {
		return
	}
	if !act.attached {
		// Delay elapsed.
		act.delay = 0
		act.lastUpdate = e.now
		if act.kind == actSleep || act.remaining <= 0 || len(act.resources) == 0 {
			e.complete(act)
			return
		}
		if r := e.failedResource(act); r != nil {
			// The resource died during the delay phase; attaching would
			// leave a zero-rate flow with no pending event.
			e.failActivity(act, r)
			return
		}
		// Enter the flow phase.
		act.attached = true
		for _, r := range act.resources {
			r.addFlow(act)
			e.markDirty(r)
		}
		return
	}
	act.settle(e.now)
	act.remaining = 0
	e.complete(act)
}

// HostPair identifies a directed host-to-host communication.
type HostPair struct {
	Src, Dst string
}

// CommBytes returns the bytes delivered between every (source,
// destination) host pair so far — the raw data of a communication matrix.
// The returned map is a copy.
func (e *Engine) CommBytes() map[HostPair]float64 {
	return maps.Clone(e.commBytes)
}

func (e *Engine) complete(act *activity) {
	if act.done {
		return
	}
	act.done = true
	obsActivitiesDone.Inc()
	e.heapRemove(act)
	isComm := act.kind == actComm
	if isComm && act.totalBytes > 0 {
		delivered := act.totalBytes
		if act.failure != nil {
			delivered -= act.remaining // only what crossed before the fault
		}
		if delivered > 0 {
			e.commBytes[HostPair{Src: act.srcHost, Dst: act.dstHost}] += delivered
		}
	}
	if act.attached {
		for _, r := range act.resources {
			r.removeFlow(act)
			e.markDirty(r)
		}
		act.attached = false
	}
	for _, w := range act.waiters {
		e.wake(w)
	}
	act.waiters = act.waiters[:0]
	if c := act.comms[0]; c != nil {
		c.finish(act)
	}
	if c := act.comms[1]; c != nil {
		c.finish(act)
	}
	if isComm {
		// Both handles now carry the outcome; nothing references the
		// activity any more, so it goes back to the pool.
		e.releaseActivity(act)
	}
}

// startActivity registers a new activity and schedules its first event.
func (e *Engine) startActivity(act *activity) {
	act.id = e.nextID
	e.nextID++
	act.lastUpdate = e.now
	if act.category != "" && !e.categories[act.category] {
		e.categories[act.category] = true
	}
	if r := e.failedResource(act); r != nil {
		// Work placed on a dead resource fails immediately, like a
		// refused connection; waiters observe the failure through the
		// error-returning wait variants.
		e.failActivity(act, r)
		return
	}
	if act.delay > 0 {
		// Delay phase first; the flow attaches when it elapses.
		e.scheduleEvent(act)
		return
	}
	if act.kind == actSleep || act.remaining <= 0 || len(act.resources) == 0 {
		// Nothing to do: complete immediately (zero-size transfer with no
		// latency, zero-flop execution, zero sleep).
		e.complete(act)
		return
	}
	act.attached = true
	for _, r := range act.resources {
		r.addFlow(act)
		e.markDirty(r)
	}
}

// --- Indexed event queue ---
//
// A binary min-heap over (time, activity id) where every live activity
// holds its own slot index. Reschedules after a rate change update the
// entry in place (sift up or down), so the queue never accumulates stale
// entries and pushes never go through an interface (the container/heap
// boxing was one allocation per event in the old engine).

// scheduleEvent inserts, updates or withdraws the queue entry of an
// activity so it matches eventTime().
func (e *Engine) scheduleEvent(act *activity) {
	t, ok := act.eventTime()
	if !ok {
		// No pending event (zero-rate flow): withdraw any stale entry so
		// it cannot fire at an outdated time.
		e.heapRemove(act)
		return
	}
	if i := int(act.heapIdx); i >= 0 {
		if e.queue[i].t == t {
			return
		}
		e.queue[i].t = t
		e.heapFix(i)
		return
	}
	e.queue = append(e.queue, eventEntry{t: t, act: act})
	i := len(e.queue) - 1
	act.heapIdx = int32(i)
	e.heapUp(i)
}

func (e *Engine) popEvent() *activity {
	if len(e.queue) == 0 {
		return nil
	}
	act := e.queue[0].act
	e.heapRemoveAt(0)
	obsQueueDepth.Set(float64(len(e.queue)))
	return act
}

// peekEventTime returns the time of the earliest pending activity event
// without consuming it.
func (e *Engine) peekEventTime() (float64, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].t, true
}

func (e *Engine) heapRemove(act *activity) {
	if act.heapIdx >= 0 {
		e.heapRemoveAt(int(act.heapIdx))
	}
}

func (e *Engine) heapRemoveAt(i int) {
	q := e.queue
	last := len(q) - 1
	q[i].act.heapIdx = -1
	if i != last {
		q[i] = q[last]
		q[i].act.heapIdx = int32(i)
	}
	q[last] = eventEntry{}
	e.queue = q[:last]
	if i != last {
		e.heapFix(i)
	}
}

func (e *Engine) heapLessAt(i, j int) bool {
	a, b := &e.queue[i], &e.queue[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.act.id < b.act.id
}

func (e *Engine) heapSwap(i, j int) {
	q := e.queue
	q[i], q[j] = q[j], q[i]
	q[i].act.heapIdx = int32(i)
	q[j].act.heapIdx = int32(j)
}

func (e *Engine) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.heapLessAt(i, p) {
			break
		}
		e.heapSwap(i, p)
		i = p
	}
}

func (e *Engine) heapDown(i int) bool {
	moved := false
	n := len(e.queue)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.heapLessAt(r, l) {
			m = r
		}
		if !e.heapLessAt(m, i) {
			break
		}
		e.heapSwap(i, m)
		i = m
		moved = true
	}
	return moved
}

func (e *Engine) heapFix(i int) {
	if !e.heapDown(i) {
		e.heapUp(i)
	}
}

// recomputeDirty re-solves max-min sharing inside every connected component
// touched by recent activity changes, settles and re-times the affected
// flows, and traces resource usage changes.
//
// The component scan stamps resources and flows with the current scan
// epoch instead of building visited-maps, and reuses the engine's BFS
// scratch buffers, so a steady-state recompute allocates nothing.
func (e *Engine) recomputeDirty() {
	if len(e.dirtyList) == 0 {
		return
	}
	if e.fullRecompute {
		for _, r := range e.res {
			e.markDirty(r)
		}
	}
	dirty := e.dirtyList
	slices.SortFunc(dirty, func(a, b *resource) int { return int(a.order) - int(b.order) })
	for _, r := range dirty {
		r.inDirty = false
	}
	e.scanEpoch++
	ep := e.scanEpoch
	resources, flows, stack := e.scanRes[:0], e.scanFlows[:0], e.scanStack[:0]
	for _, root := range dirty {
		if root.scanned == ep {
			continue
		}
		root.scanned = ep
		// BFS over the component of resources connected through flows.
		resources, flows, stack = resources[:0], flows[:0], stack[:0]
		stack = append(stack, root)
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			resources = append(resources, r)
			for _, f := range r.sortedFlows() {
				if f.scanned == ep {
					continue
				}
				f.scanned = ep
				flows = append(flows, f)
				for _, fr := range f.resources {
					if fr.scanned != ep {
						fr.scanned = ep
						stack = append(stack, fr)
					}
				}
			}
		}
		e.Recomputes++
		obsRecomputes.Inc()
		obsFlowsSettled.Add(uint64(len(flows)))
		// Settle progress under the old rates before changing them.
		for _, f := range flows {
			f.settle(e.now)
		}
		solveMaxMin(resources, flows)
		for _, f := range flows {
			e.scheduleEvent(f)
		}
		for _, r := range resources {
			e.traceResource(r)
		}
	}
	e.scanRes, e.scanFlows, e.scanStack = resources[:0], flows[:0], stack[:0]
	e.dirtyList = dirty[:0]
}

// traceResource records the current total usage of a resource (and the
// per-category split when enabled) if it changed since last traced.
func (e *Engine) traceResource(r *resource) {
	if !r.traceUsage || e.tr == nil {
		return
	}
	total := 0.0
	var byCat map[string]float64
	if e.traceCats {
		if e.catScratch == nil {
			e.catScratch = make(map[string]float64)
		}
		clear(e.catScratch)
		byCat = e.catScratch
	}
	// Sum in flow-id order: float addition isn't associative, so summing
	// in arbitrary order would make the traced totals run-to-run unstable.
	for _, f := range r.sortedFlows() {
		if !f.attached || f.done {
			continue
		}
		total += f.rate
		if byCat != nil {
			byCat[f.category] += f.rate
		}
	}
	if total != r.lastUsage {
		mustSet(e.tr.Set(e.now, r.name, r.usageMetric, total))
		r.lastUsage = total
	}
	if byCat != nil {
		// Write categories that changed, including ones dropping to zero.
		cats := e.catKeys[:0]
		for c := range byCat {
			cats = append(cats, c)
		}
		for c := range r.lastByCat {
			if _, live := byCat[c]; !live {
				cats = append(cats, c)
			}
		}
		slices.Sort(cats)
		for _, c := range cats {
			if c == "" {
				continue
			}
			v := byCat[c]
			if v != r.lastByCat[c] {
				mustSet(e.tr.Set(e.now, r.name, r.usageMetric+":"+c, v))
				if v == 0 {
					delete(r.lastByCat, c)
				} else {
					r.lastByCat[c] = v
				}
			}
		}
		e.catKeys = cats[:0]
	}
}

func mustSet(err error) {
	if err != nil {
		panic(err)
	}
}

// Categories returns the sorted activity categories observed so far.
func (e *Engine) Categories() []string {
	return slices.Sorted(maps.Keys(e.categories))
}
