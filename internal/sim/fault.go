package sim

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"sort"

	"viva/internal/fault"
	"viva/internal/trace"
)

// ErrTimeout is returned by the timeout-aware wait variants when the
// deadline elapses before the communication completes.
var ErrTimeout = errors.New("sim: timeout")

// ErrCanceled is returned when waiting on a communication that was
// withdrawn with Cancel before it ever matched.
var ErrCanceled = errors.New("sim: communication canceled")

// ResourceFailure is the error attached to activities interrupted by a
// fault: the named resource went down at the given simulated time while
// the activity depended on it.
type ResourceFailure struct {
	Resource string
	Time     float64
}

func (f *ResourceFailure) Error() string {
	return fmt.Sprintf("sim: resource %q failed at t=%g", f.Resource, f.Time)
}

// InjectFaults arms the engine with a fault schedule. Call it after New
// and before Run; calling it several times merges the schedules. Every
// target must name a platform host or link. Injection also seeds an
// availability=1 sample for every host and link (in sorted order, so
// traces are deterministic): group availability means then average over
// all members, with only genuinely faulted ones pulling below 1.
//
// While Run executes, schedule events are interleaved with activity
// events in time order. A host or link going down interrupts every
// activity attached to it — the activity settles first, so partially
// transferred bytes stay accounted — and rejects new work until the
// matching recovery event. Degradations re-share the reduced bandwidth
// without interrupting transfers; latency spikes add to the route
// latency of transfers matched while the spike is active. The whole
// schedule is applied even when every actor finishes early, so the
// availability timelines always cover the full scenario.
func (e *Engine) InjectFaults(sched *fault.Schedule) error {
	if sched.Len() == 0 {
		return nil
	}
	evs := sched.Events()
	for _, ev := range evs {
		if ev.Kind.OnHost() {
			if _, ok := e.hosts[ev.Target]; !ok {
				return fmt.Errorf("sim: fault schedule targets unknown host %q", ev.Target)
			}
		} else {
			if _, ok := e.links[ev.Target]; !ok {
				return fmt.Errorf("sim: fault schedule targets unknown link %q", ev.Target)
			}
		}
	}
	first := len(e.faults) == 0
	e.faults = append(e.faults, evs...)
	sort.SliceStable(e.faults, func(i, j int) bool { return e.faults[i].Time < e.faults[j].Time })
	if first && e.tr != nil {
		for _, name := range sortedNames(e.hosts) {
			mustSet(e.tr.Set(e.now, name, trace.MetricAvailability, 1))
		}
		for _, name := range sortedNames(e.links) {
			mustSet(e.tr.Set(e.now, name, trace.MetricAvailability, 1))
		}
	}
	return nil
}

func sortedNames(m map[string]*resource) []string {
	return slices.Sorted(maps.Keys(m))
}

// HostAvailable reports whether the host is currently up. Unknown hosts
// report false.
func (e *Engine) HostAvailable(host string) bool {
	r, ok := e.hosts[host]
	return ok && !r.down
}

// applyFault executes one schedule event at the current simulated time.
func (e *Engine) applyFault(fe fault.Event) {
	switch fe.Kind {
	case fault.HostDown:
		e.takeDown(e.hosts[fe.Target], trace.StateHostDown, trace.MetricPower)
	case fault.HostUp:
		e.bringUp(e.hosts[fe.Target], trace.MetricPower)
	case fault.LinkDown:
		e.takeDown(e.links[fe.Target], trace.StateLinkDown, trace.MetricBandwidth)
	case fault.LinkUp:
		e.bringUp(e.links[fe.Target], trace.MetricBandwidth)
	case fault.LinkDegrade:
		r := e.links[fe.Target]
		r.degrade = fe.Factor
		if r.down {
			return // takes effect at the recovery event
		}
		r.capacity = r.nominal * r.degrade
		e.markDirty(r)
		e.traceHealth(r, trace.MetricBandwidth)
	case fault.LatencySpike:
		if e.extraLatency == nil {
			e.extraLatency = make(map[string]float64)
		}
		if fe.Factor == 0 {
			delete(e.extraLatency, fe.Target)
		} else {
			e.extraLatency[fe.Target] = fe.Factor
		}
	}
}

// takeDown crashes a resource: capacity drops to zero, every attached
// activity is interrupted with a ResourceFailure, and new activities are
// rejected until the matching bringUp. The victims are snapshotted first:
// failActivity swap-removes each flow from r.flows, which must not happen
// under the iteration.
func (e *Engine) takeDown(r *resource, state, capMetric string) {
	if r.down {
		return
	}
	r.down = true
	r.capacity = 0
	victims := append(e.faultScratch[:0], r.sortedFlows()...)
	for _, f := range victims {
		e.failActivity(f, r)
	}
	e.faultScratch = victims[:0]
	e.markDirty(r)
	if e.tr != nil {
		mustSet(e.tr.SetState(e.now, r.name, state))
		mustSet(e.tr.Set(e.now, r.name, trace.MetricAvailability, 0))
		mustSet(e.tr.Set(e.now, r.name, capMetric, 0))
	}
}

// bringUp restores a crashed resource to its nominal capacity scaled by
// any standing degradation factor.
func (e *Engine) bringUp(r *resource, capMetric string) {
	if !r.down {
		return
	}
	r.down = false
	r.capacity = r.nominal * r.degrade
	e.markDirty(r)
	e.traceHealth(r, capMetric)
}

// traceHealth records an up (possibly degraded) resource's state,
// availability and capacity.
func (e *Engine) traceHealth(r *resource, capMetric string) {
	if e.tr == nil {
		return
	}
	state := ""
	if r.degrade < 1 {
		state = trace.StateDegraded
	}
	mustSet(e.tr.SetState(e.now, r.name, state))
	mustSet(e.tr.Set(e.now, r.name, trace.MetricAvailability, r.degrade))
	mustSet(e.tr.Set(e.now, r.name, capMetric, r.capacity))
}

// failActivity interrupts one activity because resource r died. The
// activity settles first so progress made under the old rates — for
// communications, the bytes already across the wire — stays accounted.
func (e *Engine) failActivity(act *activity, r *resource) {
	if act.done {
		return
	}
	act.settle(e.now)
	act.failure = &ResourceFailure{Resource: r.name, Time: e.now}
	e.complete(act)
}

// failedResource returns a down resource the activity depends on, or nil.
func (e *Engine) failedResource(act *activity) *resource {
	for _, r := range act.resources {
		if r.down {
			return r
		}
	}
	return nil
}

// cancelTimer retires a pending timeout timer whose race was lost: its
// queue entry is withdrawn and its waiters dropped so nobody is
// spuriously woken. The caller owns the timer and releases it afterwards.
func (e *Engine) cancelTimer(act *activity) {
	if act.done {
		return
	}
	act.done = true
	e.heapRemove(act)
	act.waiters = act.waiters[:0]
}
