package sim

import "sort"

// solveMaxMin assigns max-min fair rates to the given flows over the given
// resources (all flows are attached and every resource of every flow is in
// the resource set — the caller passes one connected component).
//
// The classic water-filling algorithm: repeatedly find the resource whose
// equal split among its still-unfixed flows is smallest, fix those flows at
// that share, remove their consumption everywhere, and iterate. Resources
// and flows are processed in deterministic order.
func solveMaxMin(resources []*resource, flows []*activity) {
	if len(flows) == 0 {
		return
	}
	sort.Slice(resources, func(i, j int) bool { return resources[i].name < resources[j].name })
	sort.Slice(flows, func(i, j int) bool { return flows[i].id < flows[j].id })

	remCap := make(map[*resource]float64, len(resources))
	nUnfixed := make(map[*resource]int, len(resources))
	for _, r := range resources {
		remCap[r] = r.capacity
		n := 0
		for f := range r.flows {
			if f.attached && !f.done {
				n++
			}
		}
		nUnfixed[r] = n
	}
	fixed := make(map[*activity]bool, len(flows))

	for fixedCount := 0; fixedCount < len(flows); {
		// Find the bottleneck resource: minimal fair share.
		var bottleneck *resource
		best := 0.0
		for _, r := range resources {
			if nUnfixed[r] == 0 {
				continue
			}
			share := remCap[r] / float64(nUnfixed[r])
			if bottleneck == nil || share < best {
				bottleneck = r
				best = share
			}
		}
		if bottleneck == nil {
			// No resource constrains the remaining flows; cannot happen for
			// attached flows (every flow uses at least one resource), but be
			// safe and give them effectively unconstrained rate.
			for _, f := range flows {
				if !fixed[f] {
					f.rate = 1e30
					fixedCount++
				}
			}
			return
		}
		if best < 0 {
			best = 0
		}
		// Fix every unfixed flow crossing the bottleneck at the fair share.
		for _, f := range bottleneck.sortedFlows() {
			if fixed[f] || !f.attached || f.done {
				continue
			}
			f.rate = best
			fixed[f] = true
			fixedCount++
			for _, r := range f.resources {
				remCap[r] -= best
				if remCap[r] < 0 {
					remCap[r] = 0
				}
				nUnfixed[r]--
			}
		}
	}
}
