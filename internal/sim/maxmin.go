package sim

import (
	"cmp"
	"slices"
)

// solveMaxMin assigns max-min fair rates to the given flows over the given
// resources (all flows are attached and every resource of every flow is in
// the resource set — the caller passes one connected component).
//
// The classic water-filling algorithm: repeatedly find the resource whose
// equal split among its still-unfixed flows is smallest, fix those flows at
// that share, remove their consumption everywhere, and iterate. Resources
// and flows are processed in deterministic order: resources by their
// name-rank (resource.order), flows by id — identical tie-breaking to the
// original sort-by-name/sort-by-id, without string comparisons.
//
// The working state lives on the resources and flows themselves (remCap,
// nUnfixed, fixed), valid only inside this call; no maps are built.
func solveMaxMin(resources []*resource, flows []*activity) {
	if len(flows) == 0 {
		return
	}
	slices.SortFunc(resources, func(a, b *resource) int { return int(a.order) - int(b.order) })
	slices.SortFunc(flows, func(a, b *activity) int { return cmp.Compare(a.id, b.id) })

	for _, r := range resources {
		r.remCap = r.capacity
		n := 0
		for _, f := range r.flows {
			if f.attached && !f.done {
				n++
			}
		}
		r.nUnfixed = n
	}
	for _, f := range flows {
		f.fixed = false
	}

	for fixedCount := 0; fixedCount < len(flows); {
		// Find the bottleneck resource: minimal fair share.
		var bottleneck *resource
		best := 0.0
		for _, r := range resources {
			if r.nUnfixed == 0 {
				continue
			}
			share := r.remCap / float64(r.nUnfixed)
			if bottleneck == nil || share < best {
				bottleneck = r
				best = share
			}
		}
		if bottleneck == nil {
			// No resource constrains the remaining flows; cannot happen for
			// attached flows (every flow uses at least one resource), but be
			// safe and give them effectively unconstrained rate.
			for _, f := range flows {
				if !f.fixed {
					f.rate = 1e30
					f.fixed = true
					fixedCount++
				}
			}
			return
		}
		if best < 0 {
			best = 0
		}
		// Fix every unfixed flow crossing the bottleneck at the fair share.
		for _, f := range bottleneck.sortedFlows() {
			if f.fixed || !f.attached || f.done {
				continue
			}
			f.rate = best
			f.fixed = true
			fixedCount++
			for _, r := range f.resources {
				r.remCap -= best
				if r.remCap < 0 {
					r.remCap = 0
				}
				r.nUnfixed--
			}
		}
	}
}
