package sim

import (
	"fmt"
	"runtime/debug"

	"viva/internal/platform"
)

// actorFailure carries a fault error through the legacy blocking APIs
// (Execute, Send, Recv, Comm.Wait): code that does not handle failures
// explicitly dies loudly with the underlying error, which Run surfaces.
// Fault-tolerant code uses the Try*/Timeout variants and never sees it.
type actorFailure struct{ err error }

type actorState int

const (
	actorReady actorState = iota
	actorRunning
	actorBlocked
	actorDone
)

// Actor is one simulated process. Its body runs in a dedicated goroutine,
// but the engine schedules exactly one actor at a time, so actor code needs
// no synchronisation.
type Actor struct {
	id   int64
	name string
	host *platform.Host
	eng  *Engine

	resume chan struct{}
	parked chan struct{}

	state       actorState
	queued      bool
	err         error
	category    string
	traceStates bool
	waiting     string // what the actor is blocked on, for deadlock reports
}

// setState records the actor's behavioural state when state tracing is on.
func (a *Actor) setState(v string) {
	if a.traceStates && a.eng.tr != nil {
		if err := a.eng.tr.SetState(a.eng.now, a.name, v); err != nil {
			panic(err)
		}
	}
}

// Name returns the actor's name.
func (a *Actor) Name() string { return a.name }

func (a *Actor) start(fn func(*Ctx)) {
	go func() {
		<-a.resume
		defer func() {
			if r := recover(); r != nil {
				if af, ok := r.(actorFailure); ok {
					a.err = af.err
				} else {
					a.err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
				}
			}
			a.state = actorDone
			a.parked <- struct{}{}
		}()
		fn(&Ctx{a: a})
		a.state = actorDone
	}()
}

// block parks the actor and hands control back to the engine; it returns
// when the engine reschedules the actor.
func (a *Actor) block() {
	a.state = actorBlocked
	a.parked <- struct{}{}
	<-a.resume
	a.state = actorRunning
}

// Ctx is the interface an actor body uses to interact with simulated time
// and resources. It is only valid inside the actor's own function.
type Ctx struct {
	a *Actor
}

// Now returns the current simulated time.
func (c *Ctx) Now() float64 { return c.a.eng.now }

// Name returns the actor's name.
func (c *Ctx) Name() string { return c.a.name }

// Host returns the name of the host the actor runs on.
func (c *Ctx) Host() string { return c.a.host.Name }

// HostPower returns the compute power of the actor's host, in flop/s.
func (c *Ctx) HostPower() float64 { return c.a.host.Power }

// SetCategory tags every subsequent activity of this actor with the given
// category. Categories drive the per-application resource usage traces the
// grid scenario visualizes (Figures 8 and 9).
func (c *Ctx) SetCategory(cat string) { c.a.category = cat }

// Execute runs amount flops on the actor's host, sharing the host's power
// with every other execution there, and returns when the work completes.
// If the host fails mid-execution the actor dies with the fault error
// (use TryExecute to handle failures).
func (c *Ctx) Execute(amount float64) {
	if err := c.TryExecute(amount); err != nil {
		panic(actorFailure{err})
	}
}

// TryExecute is Execute returning an error instead of killing the actor
// when the host fails before or during the work. Partial progress is
// lost; fault-tolerant callers decide whether to retry.
func (c *Ctx) TryExecute(amount float64) error {
	if amount <= 0 {
		return nil
	}
	e := c.a.eng
	host := e.hosts[c.a.host.Name]
	act := e.acquireActivity()
	act.kind = actExec
	act.category = c.a.category
	act.resources = append(act.resources, host)
	act.remaining = amount
	act.addWaiter(c.a)
	c.a.setState("compute")
	e.startActivity(act)
	for !act.done {
		c.a.block()
	}
	c.a.setState("")
	err := act.failure
	e.releaseActivity(act)
	return err
}

// HostAvailable reports whether a host is currently up (always true
// unless a fault schedule took it down). Fault-tolerant masters use it
// to tell a dead worker from a slow one.
func (c *Ctx) HostAvailable(host string) bool {
	return c.a.eng.HostAvailable(host)
}

// Sleep suspends the actor for d seconds of simulated time.
func (c *Ctx) Sleep(d float64) {
	if d <= 0 {
		return
	}
	e := c.a.eng
	act := e.acquireActivity()
	act.kind = actSleep
	act.delay = d
	act.addWaiter(c.a)
	c.a.setState("sleep")
	e.startActivity(act)
	for !act.done {
		c.a.block()
	}
	c.a.setState("")
	e.releaseActivity(act)
}

// Spawn starts a new actor from inside a running one.
func (c *Ctx) Spawn(name, host string, fn func(*Ctx)) *Actor {
	return c.a.eng.Spawn(name, host, fn)
}

// SetHostPower changes a host's capacity from now on (see
// Engine.SetHostPower). Combined with Sleep it scripts availability
// scenarios: slowdowns, outages (power 0) and recoveries.
func (c *Ctx) SetHostPower(host string, power float64) error {
	return c.a.eng.SetHostPower(host, power)
}

// Put posts an asynchronous send of payload (size bytes) to a mailbox and
// returns immediately. The transfer starts when a receiver shows up and
// completes after the route latency plus the fair-shared transfer time.
func (c *Ctx) Put(mbox string, payload any, size float64) *Comm {
	return c.a.eng.put(c.a, mbox, payload, size)
}

// Get posts an asynchronous receive on a mailbox and returns immediately;
// Wait on the returned Comm blocks until a message arrives.
func (c *Ctx) Get(mbox string) *Comm {
	return c.a.eng.get(c.a, mbox)
}

// Send transfers payload (size bytes) to a mailbox and blocks until the
// transfer completes (rendezvous semantics).
func (c *Ctx) Send(mbox string, payload any, size float64) {
	cm := c.Put(mbox, payload, size)
	c.a.setState("send")
	cm.Wait(c)
	c.a.setState("")
}

// Recv blocks until a message arrives on the mailbox and returns its
// payload.
func (c *Ctx) Recv(mbox string) any {
	cm := c.Get(mbox)
	c.a.setState("recv")
	payload := cm.Wait(c)
	c.a.setState("")
	return payload
}

// WaitAny blocks until at least one of the given communications completed
// and returns the index of the first completed one (lowest index when
// several completed at the same instant). Nil entries are ignored; WaitAny
// panics if every entry is nil.
func (c *Ctx) WaitAny(comms []*Comm) int {
	allNil := true
	for _, cm := range comms {
		if cm != nil {
			allNil = false
			break
		}
	}
	if allNil {
		panic("sim: WaitAny on no communications")
	}
	c.a.setState("wait")
	c.a.waiting = "wait-any"
	defer func() {
		c.a.setState("")
		c.a.waiting = ""
	}()
	for {
		for i, cm := range comms {
			if cm != nil && cm.completed() {
				return i
			}
		}
		for _, cm := range comms {
			if cm != nil {
				cm.addWaiter(c.a)
			}
		}
		c.a.block()
	}
}

// WaitAnyTimeout is WaitAny with a deadline d seconds away: it returns
// the index of a completed communication and true, or -1 and false when
// the deadline elapses first. Unlike WaitAny, an all-nil slice is
// allowed (it simply waits out the deadline).
func (c *Ctx) WaitAnyTimeout(comms []*Comm, d float64) (int, bool) {
	e := c.a.eng
	c.a.setState("wait")
	c.a.waiting = "wait-any"
	defer func() {
		c.a.setState("")
		c.a.waiting = ""
	}()
	timer := e.acquireActivity()
	timer.kind = actSleep
	timer.delay = d
	timer.addWaiter(c.a)
	e.startActivity(timer)
	for {
		for i, cm := range comms {
			if cm != nil && cm.completed() {
				e.cancelTimer(timer)
				e.releaseActivity(timer)
				return i, true
			}
		}
		if timer.done {
			e.releaseActivity(timer)
			return -1, false
		}
		for _, cm := range comms {
			if cm != nil {
				cm.addWaiter(c.a)
			}
		}
		c.a.block()
	}
}

// Comm is a handle on an asynchronous communication. The handle outlives
// the engine-internal activity that carries the transfer: on completion
// the engine copies the outcome here (see finish) and recycles the
// activity, so a Comm held long after delivery stays valid.
type Comm struct {
	eng            *Engine
	act            *activity // live only while matched and in flight
	mb             *mailbox  // where the unmatched half is queued
	matched        bool      // sender and receiver paired up
	done           bool
	failure        error
	canceled       bool
	pendingWaiters []*Actor
	payload        any // what the sender shipped
}

func (cm *Comm) completed() bool { return cm.done }

// finish copies the final state of the transfer into the handle and drops
// the activity link, releasing the engine to recycle the activity.
func (cm *Comm) finish(act *activity) {
	cm.done = true
	cm.failure = act.failure
	cm.act = nil
}

func (cm *Comm) addWaiter(a *Actor) {
	if cm.done {
		return
	}
	if cm.act != nil {
		cm.act.addWaiter(a)
		return
	}
	cm.pendingWaiters = append(cm.pendingWaiters, a)
}

// Done reports whether the communication completed.
func (cm *Comm) Done() bool { return cm.completed() }

// Err returns why the communication failed, once completed (nil while
// pending or on success).
func (cm *Comm) Err() error {
	if cm.canceled {
		return ErrCanceled
	}
	if !cm.done {
		return nil
	}
	return cm.failure
}

// Wait blocks the calling actor until the communication completes and
// returns the payload. If the transfer was interrupted by a fault the
// actor dies with the fault error (use TryWait to handle failures).
func (cm *Comm) Wait(c *Ctx) any {
	payload, err := cm.TryWait(c)
	if err != nil {
		panic(actorFailure{err})
	}
	return payload
}

// TryWait is Wait returning an error instead of killing the actor when
// the transfer is interrupted by a fault.
func (cm *Comm) TryWait(c *Ctx) (any, error) {
	if cm.canceled {
		return nil, ErrCanceled
	}
	if cm.mb != nil {
		c.a.waiting = "mbox " + cm.mb.name
		defer func() { c.a.waiting = "" }()
	}
	for !cm.completed() {
		cm.addWaiter(c.a)
		c.a.block()
	}
	if err := cm.failure; err != nil {
		return nil, err
	}
	return cm.payload, nil
}

// WaitTimeout waits at most d seconds of simulated time for the
// communication to find its partner. It returns ErrTimeout when the
// deadline elapses while the communication is still unmatched — the
// communication is withdrawn from its mailbox, so a retry posts fresh.
// Once matched, the deadline no longer applies: the in-flight transfer
// is allowed to resolve (delivery, or the fault error when a resource on
// the route died), so a deadline racing a slow-but-live transfer can
// neither lose nor duplicate the message.
func (cm *Comm) WaitTimeout(c *Ctx, d float64) (any, error) {
	if cm.canceled {
		return nil, ErrCanceled
	}
	e := cm.eng
	if cm.mb != nil {
		c.a.waiting = "mbox " + cm.mb.name
		defer func() { c.a.waiting = "" }()
	}
	timer := e.acquireActivity()
	timer.kind = actSleep
	timer.delay = d
	timer.addWaiter(c.a)
	e.startActivity(timer)
	for !cm.completed() {
		if timer.done && !cm.matched {
			e.releaseActivity(timer)
			cm.Cancel()
			return nil, ErrTimeout
		}
		cm.addWaiter(c.a)
		c.a.block()
	}
	e.cancelTimer(timer)
	e.releaseActivity(timer)
	if err := cm.failure; err != nil {
		return nil, err
	}
	return cm.payload, nil
}

// Cancel withdraws a communication that never matched from its mailbox,
// so the peer can no longer pair with it; waiting on it afterwards
// returns ErrCanceled. It reports whether anything was withdrawn: a
// matched (in-flight or completed) communication is left alone and false
// is returned.
func (cm *Comm) Cancel() bool {
	if cm.matched || cm.canceled || cm.mb == nil {
		return false
	}
	if !cm.mb.remove(cm) {
		return false
	}
	cm.canceled = true
	cm.pendingWaiters = nil
	return true
}
