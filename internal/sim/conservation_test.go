package sim

import (
	"errors"
	"math/rand"
	"testing"

	"viva/internal/fault"
	"viva/internal/trace"
)

// Physics of the fluid model, checked against the traces the engine
// emits: work and bytes are conserved exactly.

// The time-integral of a host's usage equals the flops executed there.
func TestHostUsageIntegralEqualsWork(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	totalFlops := map[string]float64{}
	work := []struct {
		host  string
		flops float64
		delay float64
	}{
		{"c-1", 500, 0}, {"c-1", 300, 1.5}, {"c-2", 800, 0.3}, {"c-3", 123, 2},
	}
	for i, w := range work {
		w := w
		e.Spawn(names("job", i), w.host, func(c *Ctx) {
			c.Sleep(w.delay)
			c.Execute(w.flops)
		})
		totalFlops[w.host] += w.flops
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	_, end := tr.Window()
	for host, want := range totalFlops {
		got := tr.Timeline(host, trace.MetricUsage).Integrate(0, end+1)
		near(t, "work on "+host, got, want)
	}
}

// The time-integral of traffic on every link of a flow's route equals the
// bytes shipped (each flow occupies the whole route).
func TestLinkTrafficIntegralEqualsBytes(t *testing.T) {
	p := testPlatform()
	tr := trace.New()
	e := New(p, tr)
	e.Spawn("s", "c-1", func(c *Ctx) { c.Send("mb", nil, 4000) })
	e.Spawn("r", "c-2", func(c *Ctx) { c.Recv("mb") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	_, end := tr.Window()
	route, err := p.Route("c-1", "c-2")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range route {
		got := tr.Timeline(l.Name, trace.MetricTraffic).Integrate(0, end+1)
		near(t, "bytes through "+l.Name, got, 4000)
	}
}

// Randomised conservation: any mix of concurrent transfers still moves
// exactly the requested bytes across each host link.
func TestRandomWorkloadConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 10; round++ {
		tr := trace.New()
		e := New(testPlatform(), tr)
		hosts := []string{"c-1", "c-2", "c-3", "c-4"}
		outBytes := map[string]float64{}
		inBytes := map[string]float64{}
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			size := float64(100 + rng.Intn(5000))
			delay := rng.Float64() * 3
			mb := names("mb", round*100+i)
			e.Spawn(names("s", round*100+i), src, func(c *Ctx) {
				c.Sleep(delay)
				c.Send(mb, nil, size)
			})
			e.Spawn(names("r", round*100+i), dst, func(c *Ctx) {
				c.Recv(mb)
			})
			outBytes[src] += size
			inBytes[dst] += size
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		_, end := tr.Window()
		for _, h := range hosts {
			got := tr.Timeline("lnk:"+h, trace.MetricTraffic).Integrate(0, end+1)
			want := outBytes[h] + inBytes[h]
			near(t, "round bytes through lnk:"+h, got, want)
		}
	}
}

// Capacity is never exceeded: at no traced instant does a resource's
// usage exceed its capacity.
func TestCapacityNeverExceeded(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	for i := 0; i < 6; i++ {
		i := i
		src := []string{"c-1", "c-2", "c-3"}[i%3]
		dst := []string{"c-2", "c-3", "c-4"}[i%3]
		mb := names("x", i)
		e.Spawn(names("sj", i), src, func(c *Ctx) {
			c.Execute(300)
			c.Send(mb, nil, 2500)
		})
		e.Spawn(names("rj", i), dst, func(c *Ctx) {
			c.Recv(mb)
			c.Execute(200)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Resources() {
		var capMetric, useMetric string
		switch r.Type {
		case trace.TypeHost:
			capMetric, useMetric = trace.MetricPower, trace.MetricUsage
		case trace.TypeLink:
			capMetric, useMetric = trace.MetricBandwidth, trace.MetricTraffic
		default:
			continue
		}
		capacity := tr.Timeline(r.Name, capMetric).At(0)
		for _, p := range tr.Timeline(r.Name, useMetric).Points() {
			if p.V > capacity*(1+1e-9) {
				t.Errorf("%s usage %g exceeds capacity %g at t=%g", r.Name, p.V, capacity, p.T)
			}
		}
	}
}

// A fault interrupting an in-flight transfer still conserves bytes: the
// traffic integral on every route link, and the delivered-bytes matrix,
// both equal exactly the bytes that crossed before the link died.
func TestFaultInterruptConservesBytes(t *testing.T) {
	p := testPlatform()
	tr := trace.New()
	e := New(p, tr)
	// 4000 B at 1000 B/s: 4 s healthy; the link dies at t=2, so exactly
	// 2000 B cross.
	sched := fault.MustSchedule(fault.Event{Time: 2, Kind: fault.LinkDown, Target: "lnk:c-2"})
	if err := e.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	var sendErr, recvErr error
	e.Spawn("s", "c-1", func(c *Ctx) {
		cm := c.Put("mb", nil, 4000)
		_, sendErr = cm.TryWait(c)
	})
	e.Spawn("r", "c-2", func(c *Ctx) {
		cm := c.Get("mb")
		_, recvErr = cm.TryWait(c)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var want *ResourceFailure
	if !errors.As(sendErr, &want) || want.Resource != "lnk:c-2" {
		t.Errorf("sender error = %v, want ResourceFailure on lnk:c-2", sendErr)
	}
	if !errors.As(recvErr, &want) {
		t.Errorf("receiver error = %v, want ResourceFailure", recvErr)
	}
	_, end := tr.Window()
	route, err := p.Route("c-1", "c-2")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range route {
		got := tr.Timeline(l.Name, trace.MetricTraffic).Integrate(0, end+1)
		near(t, "bytes through "+l.Name, got, 2000)
	}
	near(t, "delivered bytes", e.CommBytes()[HostPair{Src: "c-1", Dst: "c-2"}], 2000)
}

func names(prefix string, i int) string {
	return prefix + "-" + string(rune('A'+i/26)) + string(rune('a'+i%26))
}
