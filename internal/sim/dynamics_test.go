package sim

import (
	"fmt"
	"strings"
	"testing"

	"viva/internal/fault"
	"viva/internal/trace"
)

func TestStateTracing(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	e.TraceStates(true)
	e.Spawn("worker", "c-1", func(c *Ctx) {
		c.Execute(500) // 5s of compute
		c.Sleep(2)
		c.Send("mb", nil, 1000)
	})
	e.Spawn("sink", "c-2", func(c *Ctx) {
		c.Recv("mb")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Process resources declared under their hosts.
	p := tr.Resource("worker")
	if p == nil || p.Type != "process" || p.Parent != "c-1" {
		t.Fatalf("process resource = %+v", p)
	}
	if got := tr.StateAt("worker", 2); got != "compute" {
		t.Errorf("state at t=2: %q, want compute", got)
	}
	if got := tr.StateAt("worker", 6); got != "sleep" {
		t.Errorf("state at t=6: %q, want sleep", got)
	}
	if got := tr.StateAt("worker", 7.5); got != "send" {
		t.Errorf("state at t=7.5: %q, want send", got)
	}
	// The sink waits in recv from t=0 until the message lands at t=8.
	if got := tr.StateAt("sink", 4); got != "recv" {
		t.Errorf("sink state at t=4: %q, want recv", got)
	}
	// Durations add up.
	d := tr.StateDurations("worker", 0, 10)
	near(t, "compute duration", d["compute"], 5)
	near(t, "sleep duration", d["sleep"], 2)
	near(t, "send duration", d["send"], 1)
}

func TestStateTracingOffByDefault(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	e.Spawn("a", "c-1", func(c *Ctx) { c.Execute(100) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Resource("a") != nil {
		t.Error("process resource declared without TraceStates")
	}
	if len(tr.StatefulResources()) != 0 {
		t.Error("states recorded without TraceStates")
	}
}

func TestSetHostPowerSlowdown(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	var end float64
	e.Spawn("job", "c-1", func(c *Ctx) {
		c.Execute(1000) // at 100 flop/s would take 10s
		end = c.Now()
	})
	e.Spawn("operator", "c-2", func(c *Ctx) {
		c.Sleep(5) // after 500 flops done…
		if err := c.SetHostPower("c-1", 50); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 500 flops at 100, then 500 at 50: 5 + 10 = 15 s.
	near(t, "slowed exec end", end, 15)
	// The power timeline records the change.
	if got := tr.Timeline("c-1", trace.MetricPower).At(3); got != 100 {
		t.Errorf("power at t=3: %g", got)
	}
	if got := tr.Timeline("c-1", trace.MetricPower).At(7); got != 50 {
		t.Errorf("power at t=7: %g", got)
	}
}

func TestSetHostPowerOutageAndRecovery(t *testing.T) {
	e := New(testPlatform(), nil)
	var end float64
	e.Spawn("job", "c-1", func(c *Ctx) {
		c.Execute(1000)
		end = c.Now()
	})
	e.Spawn("operator", "c-2", func(c *Ctx) {
		c.Sleep(2)
		if err := c.SetHostPower("c-1", 0); err != nil { // outage
			t.Error(err)
		}
		c.Sleep(3)
		if err := c.SetHostPower("c-1", 200); err != nil { // comes back faster
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 200 flops in 2s, outage 3s, remaining 800 at 200 = 4s: end at 9.
	near(t, "outage exec end", end, 9)
}

func TestSetHostPowerErrors(t *testing.T) {
	e := New(testPlatform(), nil)
	if err := e.SetHostPower("ghost", 10); err == nil {
		t.Error("unknown host accepted")
	}
	if err := e.SetHostPower("c-1", -1); err == nil {
		t.Error("negative power accepted")
	}
}

// The lazy component-based invalidation must be an optimisation only:
// with full recomputation the simulation produces the exact same trace,
// at every combination of the tracing and fault knobs. Each combination
// is also run twice to pin run-to-run reproducibility.
func TestLazyAndFullRecomputeEquivalent(t *testing.T) {
	run := func(full, cats, states, faults bool) string {
		tr := trace.New()
		e := New(testPlatform(), tr)
		e.SetFullRecompute(full)
		e.TraceCategories(cats)
		e.TraceStates(states)
		if faults {
			sched := fault.MustSchedule(
				fault.Event{Time: 0.5, Kind: fault.LatencySpike, Target: "lnk:c-4", Factor: 0.2},
				fault.Event{Time: 1, Kind: fault.LinkDown, Target: "lnk:c-2"},
				fault.Event{Time: 2, Kind: fault.LinkDegrade, Target: "lnk:c-3", Factor: 0.5},
				fault.Event{Time: 3, Kind: fault.LinkUp, Target: "lnk:c-2"},
				fault.Event{Time: 4, Kind: fault.HostDown, Target: "c-4"},
				fault.Event{Time: 6, Kind: fault.HostUp, Target: "c-4"},
			)
			if err := e.InjectFaults(sched); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i <= 4; i++ {
			host := []string{"c-1", "c-2", "c-3", "c-4"}[i-1]
			mb := []string{"m1", "m2", "m3", "m4"}[i-1]
			cat := []string{"app-a", "app-b"}[i%2]
			flops := float64(100 * i)
			// Fault-tolerant bodies: failed work is retried once after a
			// backoff, further failures are swallowed, so the same code
			// drives both the healthy and the faulted matrix rows.
			e.Spawn("w"+mb, host, func(c *Ctx) {
				c.SetCategory(cat)
				for c.TryExecute(flops) != nil {
					c.Sleep(1)
				}
				for {
					cm := c.Put(mb, nil, 1500)
					if _, err := cm.WaitTimeout(c, 5); err == nil {
						break
					}
					c.Sleep(1)
				}
				c.TryExecute(200)
			})
			peer := []string{"c-2", "c-3", "c-4", "c-1"}[i-1]
			e.Spawn("r"+mb, peer, func(c *Ctx) {
				c.SetCategory(cat)
				for {
					cm := c.Get(mb)
					if _, err := cm.WaitTimeout(c, 5); err == nil {
						break
					}
					c.Sleep(1)
				}
				c.TryExecute(150)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := trace.Write(&sb, tr); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	for _, cats := range []bool{false, true} {
		for _, states := range []bool{false, true} {
			for _, faults := range []bool{false, true} {
				name := fmt.Sprintf("cats=%v/states=%v/faults=%v", cats, states, faults)
				t.Run(name, func(t *testing.T) {
					lazy := run(false, cats, states, faults)
					if full := run(true, cats, states, faults); lazy != full {
						t.Error("lazy and full recomputation produced different traces")
					}
					if again := run(false, cats, states, faults); lazy != again {
						t.Error("same knobs produced different traces across runs")
					}
				})
			}
		}
	}
}

func TestStateRoundTripThroughFormat(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	e.TraceStates(true)
	e.Spawn("p", "c-1", func(c *Ctx) { c.Execute(200); c.Sleep(1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.StatefulResources()) != 1 {
		t.Fatalf("stateful resources = %v", tr.StatefulResources())
	}
	vals := tr.StateValues()
	if len(vals) != 2 || vals[0] != "compute" || vals[1] != "sleep" {
		t.Errorf("state values = %v", vals)
	}
}
