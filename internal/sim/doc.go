// Package sim is a discrete-event simulator of distributed applications on
// hierarchical platforms. It stands in for the SimGrid/SMPI toolchain the
// paper used to produce its traces (see DESIGN.md, substitutions).
//
// The resource model follows SimGrid's fluid model:
//
//   - a computation on a host progresses at the host's power divided among
//     the computations currently running there;
//   - a communication occupies every link of the route between its two
//     hosts, pays the route latency once, and then progresses at the rate
//     the max-min fair bandwidth sharing assigns to it;
//   - rates are recomputed whenever the set of concurrent activities
//     changes, but only inside the connected component of resources and
//     flows affected by the change (lazy partial invalidation), which keeps
//     large scenarios — thousands of hosts — tractable.
//
// Applications are written as actors: plain Go functions that run in their
// own goroutine and interact with the engine through a Ctx (Execute, Send,
// Recv, Sleep, …). The engine schedules exactly one actor at a time and
// orders every queue deterministically, so a given program produces a
// byte-identical trace on every run.
//
// While running, the engine records host usage and link traffic (overall
// and per activity category) into a trace.Trace, which is exactly the
// input the topology-based visualization consumes.
package sim
