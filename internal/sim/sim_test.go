package sim

import (
	"math"
	"strings"
	"testing"

	"viva/internal/platform"
	"viva/internal/trace"
)

func testPlatform() *platform.Platform {
	p := platform.New("g")
	p.AddSite("s", platform.SiteConfig{BackboneBandwidth: 1e9, UplinkBandwidth: 1e9})
	p.AddCluster("s", "c", platform.ClusterConfig{
		Hosts:             4,
		HostPower:         100,  // 100 flop/s: easy arithmetic
		HostLinkBandwidth: 1000, // 1000 B/s
		BackboneBandwidth: 1e9,
		UplinkBandwidth:   1e9,
	})
	return p
}

func near(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("%s = %g, want %g", what, got, want)
	}
}

func TestExecDuration(t *testing.T) {
	e := New(testPlatform(), nil)
	var end float64
	e.Spawn("a", "c-1", func(c *Ctx) {
		c.Execute(500) // 500 flops at 100 flop/s = 5 s
		end = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "exec end", end, 5)
}

func TestExecSharing(t *testing.T) {
	// Two equal executions on one host each get half the power.
	e := New(testPlatform(), nil)
	var end1, end2 float64
	e.Spawn("a", "c-1", func(c *Ctx) { c.Execute(500); end1 = c.Now() })
	e.Spawn("b", "c-1", func(c *Ctx) { c.Execute(500); end2 = c.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "shared exec end 1", end1, 10)
	near(t, "shared exec end 2", end2, 10)
}

func TestExecStaggeredSharing(t *testing.T) {
	// b starts when a is halfway: a runs 2.5s alone (250 flops), then both
	// share. a needs 250 more at 50 flop/s => ends at 7.5. b needs 500:
	// 250 by t=7.5, then alone at 100 => ends at 10.
	e := New(testPlatform(), nil)
	var endA, endB float64
	e.Spawn("a", "c-1", func(c *Ctx) { c.Execute(500); endA = c.Now() })
	e.Spawn("b", "c-1", func(c *Ctx) { c.Sleep(2.5); c.Execute(500); endB = c.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "endA", endA, 7.5)
	near(t, "endB", endB, 10)
}

func TestSleep(t *testing.T) {
	e := New(testPlatform(), nil)
	var end float64
	e.Spawn("a", "c-1", func(c *Ctx) {
		c.Sleep(3)
		c.Sleep(0)  // no-op
		c.Sleep(-1) // no-op
		end = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "sleep end", end, 3)
}

func TestCommDuration(t *testing.T) {
	// Route c-1 -> c-2: host link (1000 B/s), backbone, host link.
	// 4000 bytes at 1000 B/s = 4 s, no latency in this platform.
	e := New(testPlatform(), nil)
	var got any
	var end float64
	e.Spawn("sender", "c-1", func(c *Ctx) { c.Send("mb", "hello", 4000) })
	e.Spawn("receiver", "c-2", func(c *Ctx) { got = c.Recv("mb"); end = c.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Errorf("payload = %v, want hello", got)
	}
	near(t, "comm end", end, 4)
}

func TestCommLatency(t *testing.T) {
	p := platform.New("g")
	p.AddSite("s", platform.SiteConfig{BackboneBandwidth: 1e9, UplinkBandwidth: 1e9})
	p.AddCluster("s", "c", platform.ClusterConfig{
		Hosts: 2, HostPower: 100,
		HostLinkBandwidth: 1000, HostLinkLatency: 0.25,
		BackboneBandwidth: 1e9, BackboneLatency: 0.5,
		UplinkBandwidth: 1e9,
	})
	e := New(p, nil)
	var end float64
	e.Spawn("sender", "c-1", func(c *Ctx) { c.Send("mb", nil, 1000) })
	e.Spawn("receiver", "c-2", func(c *Ctx) { c.Recv("mb"); end = c.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Latency 0.25+0.5+0.25 = 1, transfer 1000/1000 = 1.
	near(t, "comm end with latency", end, 2)
}

func TestCommFairSharing(t *testing.T) {
	// Two flows from distinct sources into the same destination host link:
	// the 1000 B/s destination link is the shared bottleneck => 500 B/s each.
	e := New(testPlatform(), nil)
	var end1, end2 float64
	e.Spawn("s1", "c-1", func(c *Ctx) { c.Send("m1", nil, 1000) })
	e.Spawn("s2", "c-2", func(c *Ctx) { c.Send("m2", nil, 1000) })
	e.Spawn("r", "c-3", func(c *Ctx) {
		c1 := c.Get("m1")
		c2 := c.Get("m2")
		c1.Wait(c)
		end1 = c.Now()
		c2.Wait(c)
		end2 = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "fair flow 1 end", end1, 2)
	near(t, "fair flow 2 end", end2, 2)
}

func TestCommIndependentFlows(t *testing.T) {
	// Disjoint pairs: both transfer at full speed concurrently.
	e := New(testPlatform(), nil)
	var end1, end2 float64
	e.Spawn("s1", "c-1", func(c *Ctx) { c.Send("m1", nil, 1000) })
	e.Spawn("s2", "c-3", func(c *Ctx) { c.Send("m2", nil, 1000) })
	e.Spawn("r1", "c-2", func(c *Ctx) { c.Recv("m1"); end1 = c.Now() })
	e.Spawn("r2", "c-4", func(c *Ctx) { c.Recv("m2"); end2 = c.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "independent flow 1", end1, 1)
	near(t, "independent flow 2", end2, 1)
}

func TestSameHostCommInstant(t *testing.T) {
	e := New(testPlatform(), nil)
	var end float64
	e.Spawn("s", "c-1", func(c *Ctx) { c.Send("mb", 42, 1e12) })
	e.Spawn("r", "c-1", func(c *Ctx) {
		if got := c.Recv("mb"); got != 42 {
			t.Errorf("payload = %v", got)
		}
		end = c.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "same-host comm end", end, 0)
}

func TestZeroFlopAndZeroByte(t *testing.T) {
	e := New(testPlatform(), nil)
	var end float64
	e.Spawn("a", "c-1", func(c *Ctx) {
		c.Execute(0)
		c.Send("mb", nil, 0)
		end = c.Now()
	})
	e.Spawn("b", "c-2", func(c *Ctx) { c.Recv("mb") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "zero work end", end, 0)
}

func TestSendBeforeRecvAndRecvBeforeSend(t *testing.T) {
	e := New(testPlatform(), nil)
	order := []string{}
	e.Spawn("s", "c-1", func(c *Ctx) {
		c.Send("m1", "x", 100)
		order = append(order, "sent1")
		c.Sleep(10)
		c.Send("m2", "y", 100)
		order = append(order, "sent2")
	})
	e.Spawn("r", "c-2", func(c *Ctx) {
		c.Recv("m1") // recv posted second
		order = append(order, "got1")
		c.Recv("m2") // recv posted first (sender sleeps)
		order = append(order, "got2")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
}

func TestWaitAny(t *testing.T) {
	e := New(testPlatform(), nil)
	var first int
	e.Spawn("s1", "c-1", func(c *Ctx) { c.Sleep(5); c.Send("m1", "slow", 100) })
	e.Spawn("s2", "c-2", func(c *Ctx) { c.Send("m2", "fast", 100) })
	e.Spawn("r", "c-3", func(c *Ctx) {
		comms := []*Comm{c.Get("m1"), c.Get("m2")}
		first = c.WaitAny(comms)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Errorf("WaitAny = %d, want 1", first)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New(testPlatform(), nil)
	e.Spawn("stuck", "c-1", func(c *Ctx) { c.Recv("never") })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("Run = %v, want deadlock error", err)
	}
}

func TestActorPanicSurfaces(t *testing.T) {
	e := New(testPlatform(), nil)
	e.Spawn("bad", "c-1", func(c *Ctx) { panic("boom") })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Run = %v, want panic error", err)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := New(testPlatform(), nil)
	var childEnd float64
	e.Spawn("parent", "c-1", func(c *Ctx) {
		c.Sleep(1)
		c.Spawn("child", "c-2", func(cc *Ctx) {
			cc.Execute(100) // 1s on 100 flop/s
			childEnd = cc.Now()
		})
		c.Sleep(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "child end", childEnd, 2)
}

func TestSpawnUnknownHostSurfacesError(t *testing.T) {
	e := New(testPlatform(), nil)
	ran := false
	a := e.Spawn("x", "nope", func(c *Ctx) { ran = true })
	if a == nil {
		t.Fatal("Spawn returned nil actor")
	}
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), `unknown host "nope"`) {
		t.Errorf("Run = %v, want unknown-host error", err)
	}
	if ran {
		t.Error("body of an actor spawned on an unknown host ran")
	}
}

func TestHostUsageTraced(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	e.Spawn("a", "c-1", func(c *Ctx) { c.Execute(500) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tl := tr.Timeline("c-1", trace.MetricUsage)
	near(t, "usage during exec", tl.At(2), 100)
	near(t, "usage after exec", tl.At(6), 0)
	// Window covers the run.
	_, end := tr.Window()
	near(t, "trace end", end, 5)
}

func TestLinkTrafficTraced(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	e.Spawn("s", "c-1", func(c *Ctx) { c.Send("mb", nil, 4000) })
	e.Spawn("r", "c-2", func(c *Ctx) { c.Recv("mb") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, link := range []string{"lnk:c-1", "lnk:c-2", "bb:c"} {
		tl := tr.Timeline(link, trace.MetricTraffic)
		near(t, "traffic on "+link+" during", tl.At(2), 1000)
		near(t, "traffic on "+link+" after", tl.At(5), 0)
	}
}

func TestCategoryTracing(t *testing.T) {
	tr := trace.New()
	e := New(testPlatform(), tr)
	e.TraceCategories(true)
	e.Spawn("a", "c-1", func(c *Ctx) {
		c.SetCategory("app1")
		c.Execute(500)
	})
	e.Spawn("b", "c-1", func(c *Ctx) {
		c.SetCategory("app2")
		c.Execute(500)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "app1 share", tr.Timeline("c-1", trace.MetricUsage+":app1").At(1), 50)
	near(t, "app2 share", tr.Timeline("c-1", trace.MetricUsage+":app2").At(1), 50)
	near(t, "total", tr.Timeline("c-1", trace.MetricUsage).At(1), 100)
	cats := e.Categories()
	if len(cats) != 2 || cats[0] != "app1" || cats[1] != "app2" {
		t.Errorf("Categories = %v", cats)
	}
}

func TestDeterministicTraces(t *testing.T) {
	run := func() string {
		tr := trace.New()
		e := New(testPlatform(), tr)
		for i := 0; i < 3; i++ {
			host := []string{"c-1", "c-2", "c-3"}[i]
			mb := []string{"m0", "m1", "m2"}[i]
			e.Spawn("s"+mb, host, func(c *Ctx) {
				c.Execute(250)
				c.Send(mb, nil, 1500)
			})
		}
		e.Spawn("sink", "c-4", func(c *Ctx) {
			comms := []*Comm{c.Get("m0"), c.Get("m1"), c.Get("m2")}
			for _, cm := range comms {
				cm.Wait(c)
			}
			c.Execute(1000)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := trace.Write(&sb, tr); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if run() != run() {
		t.Error("two identical simulations produced different traces")
	}
}

func TestEngineStats(t *testing.T) {
	e := New(testPlatform(), nil)
	e.Spawn("a", "c-1", func(c *Ctx) { c.Execute(100) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Events == 0 || e.Recomputes == 0 {
		t.Errorf("stats not collected: events=%d recomputes=%d", e.Events, e.Recomputes)
	}
}
