package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// resOrder hands out deterministic order ranks for test resources (the
// engine assigns them from the name-sorted resource list; here creation
// order is already name order).
var resOrder int32

// makeRes builds a resource for solver tests.
func makeRes(name string, cap float64) *resource {
	resOrder++
	return &resource{name: name, order: resOrder, capacity: cap, flowsSorted: true}
}

// makeFlow attaches a flow to the given resources.
func makeFlow(id int64, rs ...*resource) *activity {
	f := &activity{id: id, attached: true, remaining: 1, resources: rs, heapIdx: -1}
	for _, r := range rs {
		r.addFlow(f)
	}
	return f
}

func TestMaxMinSingleBottleneck(t *testing.T) {
	r := makeRes("l", 100)
	f1 := makeFlow(1, r)
	f2 := makeFlow(2, r)
	solveMaxMin([]*resource{r}, []*activity{f1, f2})
	if f1.rate != 50 || f2.rate != 50 {
		t.Errorf("rates = %g, %g; want 50, 50", f1.rate, f2.rate)
	}
}

func TestMaxMinTwoLevels(t *testing.T) {
	// f1 crosses narrow (10) and wide (100); f2 crosses wide only.
	// f1 gets 10; f2 gets the rest of wide: 90.
	narrow := makeRes("narrow", 10)
	wide := makeRes("wide", 100)
	f1 := makeFlow(1, narrow, wide)
	f2 := makeFlow(2, wide)
	solveMaxMin([]*resource{narrow, wide}, []*activity{f1, f2})
	if f1.rate != 10 {
		t.Errorf("f1 rate = %g, want 10", f1.rate)
	}
	if f2.rate != 90 {
		t.Errorf("f2 rate = %g, want 90", f2.rate)
	}
}

func TestMaxMinThreeFlowsClassic(t *testing.T) {
	// Classic chain: links A(10) and B(10); f1 uses A, f2 uses A+B, f3 uses B.
	// Fair shares: everyone 5 at first (A: 2 flows -> 5, B: 2 flows -> 5);
	// then f1 and f3 could take the slack: A has 5 left for f1 -> wait, f1
	// is the only unfixed on A after f2 fixed at 5... max-min: first
	// bottleneck is A or B with share 5, fixing f1,f2 (via A) then f3 gets
	// B's remainder 5... all end at 5.
	a := makeRes("a", 10)
	b := makeRes("b", 10)
	f1 := makeFlow(1, a)
	f2 := makeFlow(2, a, b)
	f3 := makeFlow(3, b)
	solveMaxMin([]*resource{a, b}, []*activity{f1, f2, f3})
	if f2.rate != 5 {
		t.Errorf("f2 rate = %g, want 5", f2.rate)
	}
	if f1.rate != 5 || f3.rate != 5 {
		t.Errorf("f1,f3 rates = %g,%g, want 5,5", f1.rate, f3.rate)
	}
}

func TestMaxMinAsymmetric(t *testing.T) {
	// A(30) carries f1,f2; B(10) carries f2,f3.
	// B is tighter: share 5 fixes f2,f3 at 5. Then A has 25 left for f1.
	a := makeRes("a", 30)
	b := makeRes("b", 10)
	f1 := makeFlow(1, a)
	f2 := makeFlow(2, a, b)
	f3 := makeFlow(3, b)
	solveMaxMin([]*resource{a, b}, []*activity{f1, f2, f3})
	if f2.rate != 5 || f3.rate != 5 {
		t.Errorf("f2,f3 = %g,%g, want 5,5", f2.rate, f3.rate)
	}
	if f1.rate != 25 {
		t.Errorf("f1 = %g, want 25", f1.rate)
	}
}

func TestMaxMinNoFlows(t *testing.T) {
	r := makeRes("l", 100)
	solveMaxMin([]*resource{r}, nil) // must not panic
}

// Properties of max-min fairness on random instances:
//  1. feasibility: no resource exceeds its capacity;
//  2. efficiency: every flow is blocked by at least one saturated resource;
//  3. fairness: a flow's rate cannot be increased without decreasing the
//     rate of a flow with smaller-or-equal rate (checked via bottleneck
//     saturation: on some resource of each flow, the flow has the maximal
//     rate among the resource's flows, or the resource is saturated).
func TestMaxMinProperties(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		nRes := 1 + rr.Intn(8)
		nFlows := 1 + rr.Intn(12)
		resources := make([]*resource, nRes)
		for i := range resources {
			resources[i] = makeRes(string(rune('a'+i)), 1+float64(rr.Intn(100)))
		}
		flows := make([]*activity, nFlows)
		for i := range flows {
			// Each flow uses a random non-empty subset of resources.
			var rs []*resource
			for _, r := range resources {
				if rr.Intn(2) == 0 {
					rs = append(rs, r)
				}
			}
			if len(rs) == 0 {
				rs = append(rs, resources[rr.Intn(nRes)])
			}
			flows[i] = makeFlow(int64(i), rs...)
		}
		solveMaxMin(resources, flows)

		const eps = 1e-9
		// 1. Feasibility.
		for _, r := range resources {
			sum := 0.0
			for _, f := range r.flows {
				sum += f.rate
			}
			if sum > r.capacity*(1+eps)+eps {
				return false
			}
		}
		// 2+3. Each flow crosses at least one saturated resource where it
		// has a maximal rate among that resource's flows.
		for _, f := range flows {
			blocked := false
			for _, r := range f.resources {
				sum := 0.0
				maxRate := 0.0
				for _, g := range r.flows {
					sum += g.rate
					if g.rate > maxRate {
						maxRate = g.rate
					}
				}
				if sum >= r.capacity*(1-1e-6)-eps && f.rate >= maxRate-eps {
					blocked = true
					break
				}
			}
			if !blocked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMaxMinDeterministic(t *testing.T) {
	build := func() ([]*resource, []*activity) {
		a := makeRes("a", 37)
		b := makeRes("b", 11)
		c := makeRes("c", 23)
		f1 := makeFlow(1, a, b)
		f2 := makeFlow(2, b, c)
		f3 := makeFlow(3, a, c)
		f4 := makeFlow(4, b)
		return []*resource{a, b, c}, []*activity{f1, f2, f3, f4}
	}
	r1, f1 := build()
	r2, f2 := build()
	solveMaxMin(r1, f1)
	solveMaxMin(r2, f2)
	for i := range f1 {
		if f1[i].rate != f2[i].rate {
			t.Errorf("flow %d: %g vs %g", i, f1[i].rate, f2[i].rate)
		}
	}
}
