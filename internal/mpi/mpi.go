// Package mpi is a thin message-passing layer over the simulator: ranks
// placed on hosts through a hostfile, with blocking and asynchronous
// point-to-point transfers. It stands in for the SMPI runtime the paper
// used to execute the NAS-DT benchmark (DESIGN.md, substitutions).
package mpi

import (
	"fmt"

	"viva/internal/sim"
)

// Rank is the per-process handle passed to the application body.
type Rank struct {
	ctx     *sim.Ctx
	rank    int
	size    int
	job     string
	collSeq int // sequence number separating successive collectives
}

// World runs one actor per rank of a job. hostfile[i] is the host of rank
// i; body is invoked with the process's Rank. World only spawns the
// actors; the caller drives the engine with Run.
func World(e *sim.Engine, job string, hostfile []string, body func(*Rank)) {
	size := len(hostfile)
	if size == 0 {
		panic("mpi: empty hostfile")
	}
	for i := 0; i < size; i++ {
		i := i
		e.Spawn(fmt.Sprintf("%s.%d", job, i), hostfile[i], func(c *sim.Ctx) {
			body(&Rank{ctx: c, rank: i, size: size, job: job})
		})
	}
}

// Rank returns the process's rank in [0, Size).
func (r *Rank) Rank() int { return r.rank }

// Size returns the number of ranks in the job.
func (r *Rank) Size() int { return r.size }

// Now returns the current simulated time.
func (r *Rank) Now() float64 { return r.ctx.Now() }

// Host returns the host the rank runs on.
func (r *Rank) Host() string { return r.ctx.Host() }

// SetCategory tags the rank's subsequent activity for per-category tracing.
func (r *Rank) SetCategory(cat string) { r.ctx.SetCategory(cat) }

// Compute executes flops on the local host.
func (r *Rank) Compute(flops float64) { r.ctx.Execute(flops) }

func (r *Rank) mbox(src, dst int) string {
	return fmt.Sprintf("%s:%d>%d", r.job, src, dst)
}

// Send transfers bytes to rank dst and blocks until delivery completes.
func (r *Rank) Send(dst int, payload any, bytes float64) {
	r.checkPeer(dst)
	r.ctx.Send(r.mbox(r.rank, dst), payload, bytes)
}

// Recv blocks until the message from rank src arrives and returns its
// payload.
func (r *Rank) Recv(src int) any {
	r.checkPeer(src)
	return r.ctx.Recv(r.mbox(src, r.rank))
}

// Isend posts an asynchronous send to rank dst.
func (r *Rank) Isend(dst int, payload any, bytes float64) *sim.Comm {
	r.checkPeer(dst)
	return r.ctx.Put(r.mbox(r.rank, dst), payload, bytes)
}

// Irecv posts an asynchronous receive from rank src.
func (r *Rank) Irecv(src int) *sim.Comm {
	r.checkPeer(src)
	return r.ctx.Get(r.mbox(src, r.rank))
}

// WaitAll blocks until every given communication completed.
func (r *Rank) WaitAll(comms []*sim.Comm) {
	for _, cm := range comms {
		if cm != nil {
			cm.Wait(r.ctx)
		}
	}
}

// TryCompute is Compute returning an error instead of killing the rank
// when the local host fails mid-work.
func (r *Rank) TryCompute(flops float64) error {
	return r.ctx.TryExecute(flops)
}

// SendTimeout transfers bytes to rank dst, waiting at most timeout
// seconds of simulated time for the receiver to show up. It returns
// sim.ErrTimeout when the receiver never arrived (the posted send is
// withdrawn so a retry starts clean) and the fault error when a resource
// on the route died mid-transfer; a transfer that matched in time is
// always carried to completion.
func (r *Rank) SendTimeout(dst int, payload any, bytes, timeout float64) error {
	r.checkPeer(dst)
	cm := r.ctx.Put(r.mbox(r.rank, dst), payload, bytes)
	_, err := cm.WaitTimeout(r.ctx, timeout)
	return err
}

// RecvTimeout waits at most timeout seconds of simulated time for the
// message from rank src. On sim.ErrTimeout the posted receive is
// withdrawn, so retrying cannot leave ghost receives queued on the
// mailbox.
func (r *Rank) RecvTimeout(src int, timeout float64) (any, error) {
	r.checkPeer(src)
	cm := r.ctx.Get(r.mbox(src, r.rank))
	return cm.WaitTimeout(r.ctx, timeout)
}

// HostAvailable reports whether a host is currently up (see
// sim.Ctx.HostAvailable).
func (r *Rank) HostAvailable(host string) bool { return r.ctx.HostAvailable(host) }

// Retry runs op up to attempts times, sleeping backoff simulated seconds
// after the first failure and doubling the pause after each further one
// (exponential backoff). It returns nil as soon as op does, and the last
// error once the attempts are exhausted. op receives the 0-based attempt
// number, so protocols can, for example, re-probe liveness before
// re-sending.
func (r *Rank) Retry(attempts int, backoff float64, op func(attempt int) error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(i); err == nil {
			return nil
		}
		if i < attempts-1 && backoff > 0 {
			r.ctx.Sleep(backoff)
			backoff *= 2
		}
	}
	return err
}

func (r *Rank) checkPeer(p int) {
	if p < 0 || p >= r.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", p, r.size))
	}
}
