package mpi

import (
	"sync"
	"testing"

	"viva/internal/platform"
	"viva/internal/sim"
)

// collPlatform has enough hosts for the largest collective tests.
func collPlatform(hosts int) *platform.Platform {
	p := platform.New("g")
	p.AddSite("s", platform.SiteConfig{BackboneBandwidth: 1e9, UplinkBandwidth: 1e9})
	p.AddCluster("s", "c", platform.ClusterConfig{
		Hosts: hosts, HostPower: 1e9,
		HostLinkBandwidth: 1e6, BackboneBandwidth: 1e9, UplinkBandwidth: 1e9,
	})
	return p
}

func hostfile(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = collPlatform(n).HostsOfCluster("c")[i]
	}
	return out
}

func runWorld(t *testing.T, n int, body func(*Rank)) {
	t.Helper()
	e := sim.New(collPlatform(n), nil)
	World(e, "coll", hostfile(n), body)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 13} {
		for _, root := range []int{0, n - 1} {
			var mu sync.Mutex
			got := make(map[int]any)
			runWorld(t, n, func(r *Rank) {
				var payload any
				if r.Rank() == root {
					payload = "data"
				}
				v := r.Bcast(root, payload, 1000)
				mu.Lock()
				got[r.Rank()] = v
				mu.Unlock()
			})
			for i := 0; i < n; i++ {
				if got[i] != "data" {
					t.Errorf("n=%d root=%d rank %d got %v", n, root, i, got[i])
				}
			}
		}
	}
}

func TestReduce(t *testing.T) {
	sum := func(a, b float64) float64 { return a + b }
	for _, n := range []int{1, 2, 3, 5, 8, 11} {
		for _, root := range []int{0, n / 2} {
			var result float64
			roots := 0
			runWorld(t, n, func(r *Rank) {
				v, isRoot := r.Reduce(root, float64(r.Rank()+1), 100, sum)
				if isRoot {
					result = v
					roots++
				}
			})
			want := float64(n*(n+1)) / 2
			if roots != 1 {
				t.Fatalf("n=%d: %d roots", n, roots)
			}
			if result != want {
				t.Errorf("n=%d root=%d: sum = %g, want %g", n, root, result, want)
			}
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	max := func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	n := 6
	var mu sync.Mutex
	var results []float64
	runWorld(t, n, func(r *Rank) {
		v := r.Allreduce(float64(r.Rank()), 100, max)
		mu.Lock()
		results = append(results, v)
		mu.Unlock()
	})
	if len(results) != n {
		t.Fatalf("results = %v", results)
	}
	for _, v := range results {
		if v != float64(n-1) {
			t.Errorf("allreduce max = %g, want %d", v, n-1)
		}
	}
}

func TestBarrierSynchronises(t *testing.T) {
	n := 4
	var mu sync.Mutex
	after := make([]float64, 0, n)
	runWorld(t, n, func(r *Rank) {
		// Rank i works i seconds before the barrier.
		r.Compute(float64(r.Rank()) * 1e9)
		r.Barrier()
		mu.Lock()
		after = append(after, r.Now())
		mu.Unlock()
	})
	if len(after) != n {
		t.Fatalf("after = %v", after)
	}
	// Everyone leaves the barrier no earlier than the slowest rank's 3s.
	for _, tt := range after {
		if tt < 3 {
			t.Errorf("rank left barrier at %g, before the slowest arrived", tt)
		}
	}
}

func TestGather(t *testing.T) {
	n := 5
	root := 2
	var got []any
	runWorld(t, n, func(r *Rank) {
		res := r.Gather(root, r.Rank()*10, 100)
		if r.Rank() == root {
			got = res
		} else if res != nil {
			t.Errorf("non-root rank %d got %v", r.Rank(), res)
		}
	})
	if len(got) != n {
		t.Fatalf("gathered = %v", got)
	}
	for i, v := range got {
		if v != i*10 {
			t.Errorf("gathered[%d] = %v, want %d", i, v, i*10)
		}
	}
}

func TestSuccessiveCollectivesDoNotInterfere(t *testing.T) {
	n := 4
	sum := func(a, b float64) float64 { return a + b }
	runWorld(t, n, func(r *Rank) {
		for round := 1; round <= 3; round++ {
			v := r.Allreduce(float64(round), 10, sum)
			if v != float64(round*n) {
				t.Errorf("round %d: allreduce = %g, want %d", round, v, round*n)
			}
		}
	})
}

func TestBcastTreeIsLogDepth(t *testing.T) {
	// With equal link latencies, a binomial bcast of a tiny payload on n
	// ranks completes in ~ceil(log2 n) link latencies, not n.
	n := 8
	p := platform.New("g")
	p.AddSite("s", platform.SiteConfig{BackboneBandwidth: 1e9, UplinkBandwidth: 1e9})
	p.AddCluster("s", "c", platform.ClusterConfig{
		Hosts: n, HostPower: 1e9,
		HostLinkBandwidth: 1e9, HostLinkLatency: 0.5, // 1s per hop (2 host links)
		BackboneBandwidth: 1e12, UplinkBandwidth: 1e9,
	})
	hf := p.HostsOfCluster("c")
	e := sim.New(p, nil)
	var end float64
	World(e, "logtest", hf, func(r *Rank) {
		r.Bcast(0, "x", 1)
		if t := r.Now(); t > end {
			end = t
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// log2(8) = 3 rounds × ~1s each; linear would take 7s.
	if end > 4.5 {
		t.Errorf("bcast finished at %g, not logarithmic", end)
	}
	if end < 2.5 {
		t.Errorf("bcast finished at %g, suspiciously fast", end)
	}
}
