package mpi

import (
	"fmt"

	"viva/internal/sim"
)

// Collective operations, implemented with the classic binomial-tree
// algorithms (as MPICH does for small messages). Every rank of a job must
// call the same collectives in the same order; a per-rank sequence number
// keeps successive collectives from interfering.

func (r *Rank) collMbox(seq, src, dst int) string {
	return fmt.Sprintf("%s/coll%d/%d>%d", r.job, seq, src, dst)
}

// Bcast distributes the root's payload to every rank along a binomial
// tree and returns it (the root returns its own payload). bytes is the
// payload size each tree edge carries.
func (r *Rank) Bcast(root int, payload any, bytes float64) any {
	r.checkPeer(root)
	seq := r.collSeq
	r.collSeq++
	size := r.size
	rel := (r.rank - root + size) % size

	// Receive from the parent (unless root).
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := ((rel &^ mask) + root) % size
			payload = r.ctx.Recv(r.collMbox(seq, src, r.rank))
			break
		}
		mask <<= 1
	}
	// Forward to children, highest distance first.
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			dst := (rel + mask + root) % size
			r.ctx.Send(r.collMbox(seq, r.rank, dst), payload, bytes)
		}
		mask >>= 1
	}
	return payload
}

// Reduce combines every rank's value with op up a binomial tree; the
// result lands on root (ok=true there, false elsewhere). op must be
// associative and commutative.
func (r *Rank) Reduce(root int, value float64, bytes float64, op func(a, b float64) float64) (float64, bool) {
	r.checkPeer(root)
	seq := r.collSeq
	r.collSeq++
	size := r.size
	rel := (r.rank - root + size) % size

	acc := value
	mask := 1
	for mask < size {
		if rel&mask == 0 {
			peer := rel | mask
			if peer < size {
				src := (peer + root) % size
				v := r.ctx.Recv(r.collMbox(seq, src, r.rank)).(float64)
				acc = op(acc, v)
			}
		} else {
			dst := ((rel &^ mask) + root) % size
			r.ctx.Send(r.collMbox(seq, r.rank, dst), acc, bytes)
			return 0, false
		}
		mask <<= 1
	}
	return acc, true
}

// Allreduce is Reduce to rank 0 followed by Bcast: every rank gets the
// combined value.
func (r *Rank) Allreduce(value float64, bytes float64, op func(a, b float64) float64) float64 {
	acc, isRoot := r.Reduce(0, value, bytes, op)
	var payload any
	if isRoot {
		payload = acc
	}
	return r.Bcast(0, payload, bytes).(float64)
}

// Barrier blocks until every rank of the job reached it.
func (r *Rank) Barrier() {
	r.Allreduce(0, 1, func(a, b float64) float64 { return a + b })
}

// Gather collects every rank's payload on root (linear algorithm); root
// receives the slice indexed by rank, others get nil.
func (r *Rank) Gather(root int, payload any, bytes float64) []any {
	r.checkPeer(root)
	seq := r.collSeq
	r.collSeq++
	if r.rank != root {
		r.ctx.Send(r.collMbox(seq, r.rank, root), payload, bytes)
		return nil
	}
	out := make([]any, r.size)
	out[root] = payload
	// Post every receive, then wait: transfers overlap.
	comms := make([]*sim.Comm, r.size)
	for src := 0; src < r.size; src++ {
		if src == root {
			continue
		}
		comms[src] = r.ctx.Get(r.collMbox(seq, src, root))
	}
	for src, cm := range comms {
		if cm != nil {
			out[src] = cm.Wait(r.ctx)
		}
	}
	return out
}
