package mpi

import (
	"errors"
	"math"
	"testing"

	"viva/internal/fault"
	"viva/internal/platform"
	"viva/internal/sim"
)

func testPlatform() *platform.Platform {
	p := platform.New("g")
	p.AddSite("s", platform.SiteConfig{BackboneBandwidth: 1e9, UplinkBandwidth: 1e9})
	p.AddCluster("s", "c", platform.ClusterConfig{
		Hosts: 4, HostPower: 100,
		HostLinkBandwidth: 1000, BackboneBandwidth: 1e9, UplinkBandwidth: 1e9,
	})
	return p
}

func near(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("%s = %g, want %g", what, got, want)
	}
}

func TestPingPong(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	var end float64
	World(e, "pp", []string{"c-1", "c-2"}, func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, "ping", 1000)
			if got := r.Recv(1); got != "pong" {
				t.Errorf("payload = %v", got)
			}
			end = r.Now()
		case 1:
			if got := r.Recv(0); got != "ping" {
				t.Errorf("payload = %v", got)
			}
			r.Send(0, "pong", 1000)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two 1000 B transfers at 1000 B/s (host links) = 2 s.
	near(t, "pingpong end", end, 2)
}

func TestRing(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	n := 4
	hosts := []string{"c-1", "c-2", "c-3", "c-4"}
	sum := 0
	World(e, "ring", hosts, func(r *Rank) {
		next := (r.Rank() + 1) % n
		prev := (r.Rank() + n - 1) % n
		if r.Rank() == 0 {
			r.Send(next, 1, 10)
			v := r.Recv(prev).(int)
			sum = v
		} else {
			v := r.Recv(prev).(int)
			r.Send(next, v+1, 10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != n {
		t.Errorf("ring sum = %d, want %d", sum, n)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	var end float64
	World(e, "ov", []string{"c-1", "c-2"}, func(r *Rank) {
		switch r.Rank() {
		case 0:
			// Two concurrent 1000 B sends to distinct ranks would contend on
			// rank 0's host link: each gets 500 B/s => 2 s total.
			c1 := r.Isend(1, nil, 1000)
			r.WaitAll([]*sim.Comm{c1})
			end = r.Now()
		case 1:
			r.WaitAll([]*sim.Comm{r.Irecv(0)})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "isend end", end, 1)
}

func TestRankMetadata(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	World(e, "meta", []string{"c-3"}, func(r *Rank) {
		if r.Rank() != 0 || r.Size() != 1 || r.Host() != "c-3" {
			t.Errorf("metadata wrong: rank=%d size=%d host=%s", r.Rank(), r.Size(), r.Host())
		}
		r.SetCategory("x")
		r.Compute(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadPeerPanics(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	World(e, "bad", []string{"c-1"}, func(r *Rank) {
		r.Send(5, nil, 1)
	})
	if err := e.Run(); err == nil {
		t.Error("out-of-range peer not surfaced")
	}
}

func TestRecvTimeoutFromDeadPeer(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	sched := fault.MustSchedule(fault.Event{Time: 0.5, Kind: fault.HostDown, Target: "c-1"})
	if err := e.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	var recvErr error
	var at float64
	World(e, "dead", []string{"c-1", "c-2"}, func(r *Rank) {
		switch r.Rank() {
		case 0:
			// Dies computing before it ever sends.
			if err := r.TryCompute(1e6); err == nil {
				t.Error("rank 0 survived its host's crash")
			}
		case 1:
			_, recvErr = r.RecvTimeout(0, 3)
			at = r.Now()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(recvErr, sim.ErrTimeout) {
		t.Errorf("RecvTimeout = %v, want sim.ErrTimeout", recvErr)
	}
	near(t, "timeout observed", at, 3)
}

func TestSendTimeoutNoReceiver(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	var err error
	World(e, "st", []string{"c-1", "c-2"}, func(r *Rank) {
		if r.Rank() == 0 {
			err = r.SendTimeout(1, nil, 100, 2)
		}
		// Rank 1 never posts a receive.
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if !errors.Is(err, sim.ErrTimeout) {
		t.Errorf("SendTimeout = %v, want sim.ErrTimeout", err)
	}
}

func TestRetryBacksOffAndSucceeds(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	var tries []float64
	var err error
	World(e, "rt", []string{"c-1"}, func(r *Rank) {
		err = r.Retry(4, 1, func(attempt int) error {
			tries = append(tries, r.Now())
			if attempt < 2 {
				return sim.ErrTimeout
			}
			return nil
		})
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != nil {
		t.Fatalf("Retry = %v, want success", err)
	}
	// Attempts at t=0, then after 1 s and 2 s pauses.
	want := []float64{0, 1, 3}
	if len(tries) != len(want) {
		t.Fatalf("attempts = %v, want times %v", tries, want)
	}
	for i := range want {
		near(t, "attempt time", tries[i], want[i])
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	var err error
	calls := 0
	World(e, "rx", []string{"c-1"}, func(r *Rank) {
		err = r.Retry(3, 0.5, func(int) error {
			calls++
			return sim.ErrTimeout
		})
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if calls != 3 || !errors.Is(err, sim.ErrTimeout) {
		t.Errorf("Retry made %d calls, err %v; want 3 calls and the last error", calls, err)
	}
}

func TestRecvTimeoutRetryDeliversAfterRecovery(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	sched := fault.MustSchedule(
		fault.Event{Time: 0, Kind: fault.LinkDown, Target: "lnk:c-1"},
		fault.Event{Time: 4, Kind: fault.LinkUp, Target: "lnk:c-1"},
	)
	if err := e.InjectFaults(sched); err != nil {
		t.Fatal(err)
	}
	var got any
	var err error
	World(e, "rec", []string{"c-1", "c-2"}, func(r *Rank) {
		switch r.Rank() {
		case 0:
			// Keep offering the message until a transfer survives.
			r.Retry(8, 0.5, func(int) error {
				return r.SendTimeout(1, "data", 1000, 2)
			})
		case 1:
			err = r.Retry(8, 0.5, func(int) error {
				var e2 error
				got, e2 = r.RecvTimeout(0, 2)
				return e2
			})
		}
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != nil || got != "data" {
		t.Fatalf("recovered delivery = (%v, %v), want (data, nil)", got, err)
	}
}

func TestEmptyHostfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty hostfile")
		}
	}()
	e := sim.New(testPlatform(), nil)
	World(e, "empty", nil, func(r *Rank) {})
}
