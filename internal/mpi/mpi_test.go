package mpi

import (
	"math"
	"testing"

	"viva/internal/platform"
	"viva/internal/sim"
)

func testPlatform() *platform.Platform {
	p := platform.New("g")
	p.AddSite("s", platform.SiteConfig{BackboneBandwidth: 1e9, UplinkBandwidth: 1e9})
	p.AddCluster("s", "c", platform.ClusterConfig{
		Hosts: 4, HostPower: 100,
		HostLinkBandwidth: 1000, BackboneBandwidth: 1e9, UplinkBandwidth: 1e9,
	})
	return p
}

func near(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("%s = %g, want %g", what, got, want)
	}
}

func TestPingPong(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	var end float64
	World(e, "pp", []string{"c-1", "c-2"}, func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, "ping", 1000)
			if got := r.Recv(1); got != "pong" {
				t.Errorf("payload = %v", got)
			}
			end = r.Now()
		case 1:
			if got := r.Recv(0); got != "ping" {
				t.Errorf("payload = %v", got)
			}
			r.Send(0, "pong", 1000)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two 1000 B transfers at 1000 B/s (host links) = 2 s.
	near(t, "pingpong end", end, 2)
}

func TestRing(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	n := 4
	hosts := []string{"c-1", "c-2", "c-3", "c-4"}
	sum := 0
	World(e, "ring", hosts, func(r *Rank) {
		next := (r.Rank() + 1) % n
		prev := (r.Rank() + n - 1) % n
		if r.Rank() == 0 {
			r.Send(next, 1, 10)
			v := r.Recv(prev).(int)
			sum = v
		} else {
			v := r.Recv(prev).(int)
			r.Send(next, v+1, 10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != n {
		t.Errorf("ring sum = %d, want %d", sum, n)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	var end float64
	World(e, "ov", []string{"c-1", "c-2"}, func(r *Rank) {
		switch r.Rank() {
		case 0:
			// Two concurrent 1000 B sends to distinct ranks would contend on
			// rank 0's host link: each gets 500 B/s => 2 s total.
			c1 := r.Isend(1, nil, 1000)
			r.WaitAll([]*sim.Comm{c1})
			end = r.Now()
		case 1:
			r.WaitAll([]*sim.Comm{r.Irecv(0)})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	near(t, "isend end", end, 1)
}

func TestRankMetadata(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	World(e, "meta", []string{"c-3"}, func(r *Rank) {
		if r.Rank() != 0 || r.Size() != 1 || r.Host() != "c-3" {
			t.Errorf("metadata wrong: rank=%d size=%d host=%s", r.Rank(), r.Size(), r.Host())
		}
		r.SetCategory("x")
		r.Compute(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadPeerPanics(t *testing.T) {
	e := sim.New(testPlatform(), nil)
	World(e, "bad", []string{"c-1"}, func(r *Rank) {
		r.Send(5, nil, 1)
	})
	if err := e.Run(); err == nil {
		t.Error("out-of-range peer not surfaced")
	}
}

func TestEmptyHostfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty hostfile")
		}
	}()
	e := sim.New(testPlatform(), nil)
	World(e, "empty", nil, func(r *Rank) {})
}
