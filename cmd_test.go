package viva_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end command-line pipeline: simulate → trace file → inspect →
// render every view. These guard the flag plumbing the unit tests can't
// see.

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "demo.viva")

	// 1. Simulate a scenario into a trace file (with process states).
	out := runCLI(t, "./cmd/tracegen", "-scenario", "demo", "-states", "-o", tracePath)
	if !strings.Contains(out, "resources") {
		t.Errorf("tracegen output: %q", out)
	}

	// 2. Inspect it.
	out = runCLI(t, "./cmd/viva", "-trace", tracePath, "-info")
	for _, want := range []string{"window:", "busiest links:", "processes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("-info output missing %q:\n%s", want, out)
		}
	}

	// 3. Render the topology view, the Gantt baseline and the treemap.
	svgPath := filepath.Join(dir, "view.svg")
	ganttPath := filepath.Join(dir, "gantt.svg")
	treemapPath := filepath.Join(dir, "treemap.svg")
	out = runCLI(t, "./cmd/viva", "-trace", tracePath, "-level", "2", "-steps", "500",
		"-o", svgPath, "-gantt", ganttPath, "-treemap", treemapPath)
	if !strings.Contains(out, "layout settled") {
		t.Errorf("render output: %q", out)
	}
	for _, p := range []string{svgPath, ganttPath, treemapPath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not an SVG", p)
		}
	}

	// 4. Animated sweep.
	animPath := filepath.Join(dir, "anim.svg")
	runCLI(t, "./cmd/viva", "-trace", tracePath, "-level", "2", "-steps", "200",
		"-animate", "3", "-o", animPath)
	data, err := os.ReadFile(animPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "<animate "); got != 3 {
		t.Errorf("animation frames = %d, want 3", got)
	}

	// 5. A trace with explicit edges loaded from a connection file.
	edgesPath := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(edgesPath, []byte("adonis-1 adonis-2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runCLI(t, "./cmd/viva", "-trace", tracePath, "-edges", edgesPath, "-info")
	if !strings.Contains(out, "loaded 1 edges") {
		t.Errorf("edges output: %q", out)
	}
}

func TestCLIExperimentsSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	dir := t.TempDir()
	out := runCLI(t, "./cmd/experiments", "-quick", "-fig", "fig4", "-out", dir)
	if strings.Contains(out, "[FAIL]") || !strings.Contains(out, "[PASS]") {
		t.Errorf("experiments output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4_a.svg")); err != nil {
		t.Errorf("fig4 SVG not written: %v", err)
	}
}
